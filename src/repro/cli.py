"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``validate``
    Check an FTLQN model file (and optionally a MAMA file) for
    structural well-formedness.
``analyze``
    Run the coverage-aware performability analysis on model files and
    print the configuration table and expected reward.
``temporal``
    Evaluate the transient performability curve R(t) and interval
    availability of a scenario lifted to failure/repair rates, plus the
    detection-latency coverage-erosion curve (see
    :mod:`repro.core.temporal`).
``importance``
    Rank components by Birnbaum reward/failure importance.
``dot``
    Emit Graphviz renderings of a model, its fault propagation graph,
    or a management architecture.
``verify``
    Fuzz randomly generated scenarios through every analytic backend
    (serial and parallel) plus the Monte-Carlo simulation cross-check,
    shrinking any disagreement to a minimal counterexample (see
    :mod:`repro.verify`).
``paper``
    Regenerate the paper's evaluation artifacts (table1, table2,
    figure11, statespace).
``sweep``
    Evaluate a multi-scenario sweep specification over the shared-cache
    :class:`~repro.core.sweep.SweepEngine` and export JSON/CSV
    artifacts.
``optimize``
    Search a generated design space of management architectures,
    report the Pareto frontier over (expected reward, cost, component
    count) and recommend the best candidate under a cost budget (see
    :mod:`repro.optimize`).
``campaign``
    Run a large point campaign (sweep grids, optimizer candidate sets,
    fuzz seed ranges) against a persistent content-addressed result
    store, sharded over worker processes and resumable after any crash
    (``campaign run``); render offline JSON/CSV reports and Pareto
    frontiers from the store (``campaign report``).  See
    :mod:`repro.campaign`.
``serve``
    Run the warm-cache analysis HTTP daemon: per-scenario sweep
    engines stay warm across requests, concurrent uncached LQN solves
    are micro-batched, and every response is bit-identical to the
    one-shot CLI (see :mod:`repro.service`).

Model files use the JSON formats of :mod:`repro.ftlqn.serialize` and
:mod:`repro.mama.serialize`.  The ``--probs`` file is either a flat
``{"component": probability}`` object or the structured form
``{"failure_probs": {...}, "common_causes": [{"name": ...,
"probability": ..., "components": [...]}]}`` (recognised by either
key).

A sweep specification is one JSON object::

    {
      "model": "figure1.json",
      "architectures": {"centralized": "centralized.json", ...},
      "base": {"failure_probs": {...}, "common_causes": [...]},
      "points": [
        {"name": "c@0.05", "architecture": "centralized",
         "failure_probs": {"m1": 0.05}, "weights": {"UserA": 1.0}},
        ...
      ]
    }

``model`` and the architecture values are file paths resolved relative
to the spec file; every ``points`` entry overlays its optional
``failure_probs``/``common_causes``/``weights`` on the ``base``
scenario (see :class:`repro.core.sweep.SweepPoint`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import (
    DEFAULT_EPSILON,
    PerformabilityAnalyzer,
    ScanCounters,
    SweepEngine,
    console_progress,
    importance_analysis,
    method_choices,
    normalize_method,
    weighted_throughput_reward,
)
from repro.core.sweep import (
    causes_from_documents,
    points_from_documents,
    probs_from_document,
)
from repro.errors import ReproError, SerializationError
from repro.ftlqn import build_fault_graph, model_from_json
from repro.ftlqn.dot import fault_graph_to_dot, model_to_dot
from repro.mama.dot import mama_to_dot
from repro.mama.serialize import mama_from_json


def _read(path: str) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc


def _load_json(path: str, what: str):
    try:
        return json.loads(_read(path))
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"{what} {path} is not valid JSON: {exc}"
        ) from exc


def _load_models(args):
    ftlqn = model_from_json(_read(args.model))
    mama = mama_from_json(_read(args.mama)) if args.mama else None
    return ftlqn, mama


#: Keys that mark a --probs document as the structured form.
_STRUCTURED_PROBS_KEYS = frozenset({"failure_probs", "common_causes"})


def _load_probs(path: str | None):
    if path is None:
        return {}, ()
    document = _load_json(path, "--probs file")
    if not isinstance(document, dict):
        raise SerializationError("--probs file must contain a JSON object")
    # The structured form is recognised by *either* key: a document
    # carrying only "common_causes" must not fall through to the flat
    # branch (where float() on the causes list used to escape as a raw
    # TypeError).
    if _STRUCTURED_PROBS_KEYS & set(document):
        unknown = sorted(set(document) - _STRUCTURED_PROBS_KEYS)
        if unknown:
            raise SerializationError(
                f"--probs file has unknown keys {unknown}; the structured "
                'form allows only "failure_probs" and "common_causes"'
            )
        probs = probs_from_document(
            document.get("failure_probs", {}),
            label='--probs "failure_probs"',
        )
        causes = causes_from_documents(document.get("common_causes", []))
        return probs, causes
    return probs_from_document(document, label="--probs file"), ()


def _parse_weights(text: str | None):
    """``--weights`` JSON → reward function (None when absent)."""
    if not text:
        return None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"--weights is not valid JSON: {exc}"
        ) from exc
    return weighted_throughput_reward(
        probs_from_document(document, label="--weights")
    )


def _resolve_method(args) -> str:
    """The scan method a command should use.

    ``--backend`` (when given) overrides ``--method``; both accept
    every name in :func:`repro.core.method_choices` (``interp``,
    ``enumeration``, ``factored``, ``bits``, ``bdd``, ``bounded``),
    and unknown values are rejected with a
    :class:`~repro.errors.ModelError` — whose message lists the valid
    names dynamically — so ``main`` renders them as a one-line
    ``error:`` message.
    """
    return normalize_method(
        args.backend if args.backend is not None else args.method
    )


def _cmd_validate(args) -> int:
    ftlqn, mama = _load_models(args)
    build_fault_graph(ftlqn)  # also checks service-decider uniqueness
    print(f"ftlqn model {ftlqn.name!r}: "
          f"{len(ftlqn.tasks)} tasks, {len(ftlqn.processors)} processors, "
          f"{len(ftlqn.entries)} entries, {len(ftlqn.services)} services — OK")
    if mama is not None:
        print(f"mama model {mama.name!r}: "
              f"{len(mama.components)} components, "
              f"{len(mama.connectors)} connectors — OK")
    return 0


def _cmd_analyze(args) -> int:
    ftlqn, mama = _load_models(args)
    probs, causes = _load_probs(args.probs)
    reward = _parse_weights(args.weights)
    analyzer = PerformabilityAnalyzer(
        ftlqn, mama, failure_probs=probs, reward=reward,
        common_causes=causes,
    )
    progress = console_progress(sys.stderr) if args.progress else None
    result = analyzer.solve(
        method=_resolve_method(args), jobs=args.jobs,
        epsilon=getattr(args, "epsilon", DEFAULT_EPSILON), progress=progress,
    )
    print(f"state space: {result.state_count} states "
          f"({result.method} evaluation"
          + (f", {result.jobs} jobs" if result.jobs != 1 else "")
          + ")")
    print(f"{'probability':>12}  {'reward':>8}  configuration")
    for record in result.records:
        marker = "" if record.converged else "  [unconverged]"
        print(f"{record.probability:12.6f}  {record.reward:8.4f}  "
              f"{record.label()}{marker}")
    print(f"expected steady-state reward rate: "
          f"{result.expected_reward:.6f}")
    if result.reward_lower is not None:
        lower, upper = result.reward_interval
        print(f"rigorous reward interval: [{lower:.6f}, {upper:.6f}] "
              f"(unexplored probability {result.unexplored_probability:.3e})")
    if result.unconverged_records:
        print(
            f"warning: {len(result.unconverged_records)} configuration(s) "
            "did not meet the LQN convergence tolerance; their rewards "
            "are approximate",
            file=sys.stderr,
        )
    if args.progress and result.counters is not None:
        c = result.counters
        print(
            f"scan: {c.states_visited} states in {c.scan_seconds:.2f}s "
            f"({c.fault_graph_evaluations} fault-graph evaluations, "
            f"{c.knowledge_cache_hits} knowledge-cache hits); "
            f"lqn: {c.lqn_solves} solves, {c.lqn_cache_hits} cache hits, "
            f"{c.lqn_unconverged} unconverged in {c.lqn_seconds:.2f}s",
            file=sys.stderr,
        )
    if getattr(args, "json_out", None):
        # Machine-precision export: counters are stripped so the
        # document depends only on the analytical inputs (the service
        # parity harness diffs this against /analyze responses).
        document = result.to_dict()
        document.pop("counters", None)
        Path(args.json_out).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


def _cmd_temporal(args) -> int:
    from repro.core.temporal import (
        TemporalAnalyzer,
        architecture_detection_latency,
        time_grid,
    )
    from repro.markov.availability import ComponentAvailability
    from repro.core.sweep import SweepPoint

    if (args.model is None) == (args.scenario is None):
        raise SerializationError(
            "give either a model file or --scenario, not both or neither"
        )
    weights = None
    if args.weights:
        try:
            weights_doc = json.loads(args.weights)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"--weights is not valid JSON: {exc}"
            ) from exc
        weights = probs_from_document(weights_doc, label="--weights")

    defaults: dict = {}
    if args.scenario is not None:
        from repro.service.catalog import load_scenario

        bundle = load_scenario(args.scenario)
        ftlqn = bundle.ftlqn
        architectures = dict(bundle.architectures)
        probs = dict(bundle.failure_probs)
        causes = bundle.common_causes
        if weights is None and bundle.weights is not None:
            weights = dict(bundle.weights)
        if bundle.temporal is not None:
            defaults = dict(bundle.temporal)
        if args.architecture is None:
            architecture = bundle.default_architecture
        elif args.architecture == "none":
            architecture = None
        else:
            architecture = args.architecture
    else:
        ftlqn = model_from_json(_read(args.model))
        mama = mama_from_json(_read(args.mama)) if args.mama else None
        architectures = {} if mama is None else {"mama": mama}
        architecture = "mama" if mama is not None else None
        probs, causes = _load_probs(args.probs)

    repair_rate = (
        args.repair_rate
        if args.repair_rate is not None
        else float(defaults.get("repair_rate", 1.0))
    )
    if args.times is not None and args.horizon is not None:
        raise SerializationError(
            "give either --times or --horizon (+ --points), not both"
        )
    if args.times is not None:
        times = [float(value) for value in args.times.split(",")]
    else:
        horizon = (
            args.horizon
            if args.horizon is not None
            else float(defaults.get("horizon", 10.0))
        )
        points = (
            args.points
            if args.points is not None
            else int(defaults.get("points", 9))
        )
        times = list(time_grid(horizon, points))
    if args.latencies is not None:
        latencies = [float(value) for value in args.latencies.split(",")]
    else:
        latencies = [float(value) for value in defaults.get("latencies", [])]

    engine = SweepEngine(ftlqn, architectures, base_failure_probs=probs)
    effective = engine.effective_failure_probs(
        SweepPoint(name="temporal", architecture=architecture)
    )
    analyzer = TemporalAnalyzer(
        ftlqn,
        rates={
            name: ComponentAvailability.from_probability(
                probability, repair_rate=repair_rate
            )
            for name, probability in effective.items()
        },
        common_causes=causes,
        cause_repair_rate=repair_rate,
        weights=weights,
        engine=engine,
    )
    derived_latency = None
    if args.heartbeat_period is not None:
        from repro.sim.heartbeat import HeartbeatConfig

        mama_model = (
            engine.architectures[architecture]
            if architecture is not None else None
        )
        derived_latency = architecture_detection_latency(
            mama_model,
            HeartbeatConfig(
                period=args.heartbeat_period,
                misses=args.heartbeat_misses,
                hop_delay=args.heartbeat_hop_delay,
            ),
        )
        if derived_latency not in latencies:
            latencies.append(derived_latency)

    method = _resolve_method(args)
    progress = console_progress(sys.stderr) if args.progress else None
    counters = ScanCounters()
    curve = analyzer.evaluate(
        times,
        architecture=architecture,
        method=method,
        jobs=args.jobs,
        epsilon=args.epsilon,
        progress=progress,
        counters=counters,
    )
    erosion = ()
    if latencies:
        erosion = analyzer.erosion_curve(
            sorted(latencies),
            method=method,
            jobs=args.jobs,
            epsilon=args.epsilon,
            progress=progress,
            counters=counters,
        )

    label = architecture if architecture is not None else "perfect knowledge"
    print(f"transient performability ({label}, {method} scan, "
          f"repair rate {repair_rate:g})")
    print(f"{'time':>10}  {'reward':>10}  {'availability':>12}")
    for point in curve.points:
        print(f"{point.time:10.4f}  {point.expected_reward:10.6f}  "
              f"{point.availability:12.6f}")
    print(f"{'steady':>10}  {curve.steady.expected_reward:10.6f}  "
          f"{1.0 - curve.steady.failed_probability:12.6f}")
    print(f"interval availability over [{curve.horizon[0]:g}, "
          f"{curve.horizon[1]:g}]: {curve.interval_availability:.6f}")
    print(f"time-averaged reward: {curve.time_averaged_reward:.6f} "
          f"(integral {curve.reward_integral:.6f})")
    if derived_latency is not None:
        print(f"derived mean detection latency ({label}): "
              f"{derived_latency:.4f}")
    if erosion:
        print("coverage erosion vs. mean detection latency:")
        print(f"{'latency':>10}  {'reward':>10}  {'erosion':>8}  "
              f"{'stale prob':>10}")
        for point in erosion:
            print(f"{point.latency:10.4f}  {point.expected_reward:10.6f}  "
                  f"{point.erosion_factor:8.4f}  "
                  f"{point.stale_probability:10.6f}")
    if getattr(args, "json_out", None):
        document = {
            "scenario": args.scenario,
            "architecture": architecture,
            "repair_rate": repair_rate,
            "result": curve.to_json_dict(),
            "erosion": [point.to_dict() for point in erosion],
            "derived_latency": derived_latency,
        }
        Path(args.json_out).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


def _cmd_importance(args) -> int:
    ftlqn, mama = _load_models(args)
    probs, causes = _load_probs(args.probs)
    method = _resolve_method(args)
    progress = console_progress(sys.stderr) if args.progress else None
    counters = ScanCounters()
    records = importance_analysis(
        ftlqn, mama, probs, common_causes=causes, method=method,
        jobs=args.jobs, progress=progress, counters=counters,
    )
    print(f"{'component':>16} {'reward imp.':>12} {'failure imp.':>13} "
          f"{'potential':>10}")
    for record in records:
        print(f"{record.component:>16} {record.reward_importance:12.4f} "
              f"{record.failure_importance:13.4f} "
              f"{record.improvement_potential:10.4f}")
    if args.json_out:
        document = {
            "method": method,
            "jobs": args.jobs,
            "counters": counters.as_dict(),
            "records": [
                {
                    "component": record.component,
                    "reward_importance": record.reward_importance,
                    "failure_importance": record.failure_importance,
                    "improvement_potential": record.improvement_potential,
                    "reward_if_up": record.reward_if_up,
                    "reward_if_down": record.reward_if_down,
                    "failure_if_up": record.failure_if_up,
                    "failure_if_down": record.failure_if_down,
                    "baseline_reward": record.baseline_reward,
                }
                for record in records
            ],
        }
        Path(args.json_out).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


def _cmd_dot(args) -> int:
    if args.kind == "mama":
        if not args.mama:
            raise SerializationError("dot --kind mama requires --mama FILE")
        print(mama_to_dot(mama_from_json(_read(args.mama))))
        return 0
    ftlqn = model_from_json(_read(args.model))
    if args.kind == "model":
        print(model_to_dot(ftlqn))
    else:
        print(fault_graph_to_dot(build_fault_graph(ftlqn)))
    return 0


_SPEC_KEYS = frozenset({"model", "architectures", "base", "points"})


def _load_sweep_spec(path: str, *, lqn_warm_start: bool = False):
    """Parse a sweep-spec file into (engine, points)."""
    document = _load_json(path, "sweep spec")
    if not isinstance(document, dict):
        raise SerializationError("sweep spec must be a JSON object")
    unknown = sorted(set(document) - _SPEC_KEYS)
    if unknown:
        raise SerializationError(
            f"sweep spec has unknown keys {unknown}; allowed: "
            f"{sorted(_SPEC_KEYS)}"
        )
    if "model" not in document:
        raise SerializationError(
            'sweep spec needs a "model" entry (FTLQN JSON file path)'
        )
    base_dir = Path(path).parent

    def resolve(entry: object) -> str:
        if not isinstance(entry, str):
            raise SerializationError(
                f"sweep spec file paths must be strings, got {entry!r}"
            )
        candidate = Path(entry)
        return str(candidate if candidate.is_absolute() else base_dir / candidate)

    ftlqn = model_from_json(_read(resolve(document["model"])))
    architectures_doc = document.get("architectures", {})
    if not isinstance(architectures_doc, dict):
        raise SerializationError(
            '"architectures" must map names to MAMA JSON file paths'
        )
    architectures = {
        str(name): mama_from_json(_read(resolve(entry)))
        for name, entry in architectures_doc.items()
    }
    base = document.get("base", {})
    if not isinstance(base, dict):
        raise SerializationError('"base" must be a JSON object')
    unknown = sorted(set(base) - {"failure_probs", "common_causes"})
    if unknown:
        raise SerializationError(
            f'"base" has unknown keys {unknown}; allowed: '
            '"failure_probs" and "common_causes"'
        )
    engine = SweepEngine(
        ftlqn,
        architectures,
        base_failure_probs=probs_from_document(
            base.get("failure_probs", {}), label='"base" failure_probs'
        ),
        base_common_causes=causes_from_documents(
            base.get("common_causes", [])
        ),
        lqn_warm_start=lqn_warm_start,
    )
    return engine, points_from_documents(document.get("points"))


def _cmd_sweep(args) -> int:
    engine, points = _load_sweep_spec(
        args.spec, lqn_warm_start=args.warm_start
    )
    progress = console_progress(sys.stderr) if args.progress else None
    counters = ScanCounters()
    sweep = engine.run(
        points, method=_resolve_method(args), jobs=args.jobs,
        epsilon=getattr(args, "epsilon", DEFAULT_EPSILON),
        progress=progress, counters=counters,
    )
    print(f"{'point':>20} {'architecture':>14} {'E[reward]':>10} "
          f"{'P(failed)':>10}  scan")
    for entry in sweep.points:
        print(f"{entry.name:>20} {entry.architecture or 'perfect':>14} "
              f"{entry.expected_reward:10.4f} "
              f"{entry.failed_probability:10.6f}  "
              + ("cached" if entry.scan_cached else "fresh"))
    c = counters
    warm = ""
    if c.lqn_warm_starts:
        mean_distance = c.lqn_warm_distance / c.lqn_warm_starts
        warm = (
            f", {c.lqn_warm_starts} warm starts "
            f"(mean distance {mean_distance:.1f})"
        )
    print(
        f"sweep: {c.sweep_points} points, {c.distinct_configurations} "
        f"distinct configurations, {c.scan_cache_hits} scan-cache hits; "
        f"lqn: {c.lqn_solves} solves, {c.lqn_cache_hits} cache hits "
        f"({100.0 * sweep.lqn_cache_hit_rate:.1f}% hit rate), "
        f"{c.lqn_unconverged} unconverged, "
        f"max batch {c.lqn_batch_max}{warm}"
    )
    if args.json_out:
        Path(args.json_out).write_text(sweep.to_json())
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.csv_out:
        Path(args.csv_out).write_text(sweep.to_csv())
        print(f"wrote {args.csv_out}", file=sys.stderr)
    return 0


def _load_optimize_spec(path: str):
    """Parse an optimize-spec file into (space, search spec, weights)."""
    from repro.optimize.spec import (
        SPEC_KEYS,
        search_spec_from_document,
        space_from_document,
    )

    document = _load_json(path, "optimize spec")
    if not isinstance(document, dict):
        raise SerializationError("optimize spec must be a JSON object")
    unknown = sorted(set(document) - SPEC_KEYS)
    if unknown:
        raise SerializationError(
            f"optimize spec has unknown keys {unknown}; allowed: "
            f"{sorted(SPEC_KEYS)}"
        )
    if "model" not in document:
        raise SerializationError(
            'optimize spec needs a "model" entry (FTLQN JSON file path)'
        )
    base_dir = Path(path).parent

    def resolve(entry: object) -> str:
        if not isinstance(entry, str):
            raise SerializationError(
                f"optimize spec file paths must be strings, got {entry!r}"
            )
        candidate = Path(entry)
        return str(candidate if candidate.is_absolute() else base_dir / candidate)

    ftlqn = model_from_json(_read(resolve(document["model"])))
    architectures_doc = document.get("architectures", {})
    if not isinstance(architectures_doc, dict):
        raise SerializationError(
            '"architectures" must map names to MAMA JSON file paths'
        )
    explicit = {
        str(name): mama_from_json(_read(resolve(entry)))
        for name, entry in architectures_doc.items()
    }
    base = document.get("base", {})
    if not isinstance(base, dict):
        raise SerializationError('"base" must be a JSON object')
    unknown = sorted(set(base) - {"failure_probs", "common_causes"})
    if unknown:
        raise SerializationError(
            f'"base" has unknown keys {unknown}; allowed: '
            '"failure_probs" and "common_causes"'
        )
    space = space_from_document(
        document.get("space"),
        ftlqn,
        explicit=explicit or None,
        base_failure_probs=probs_from_document(
            base.get("failure_probs", {}), label='"base" failure_probs'
        ),
        common_causes=causes_from_documents(base.get("common_causes", [])),
    )
    weights = None
    if "weights" in document:
        weights = probs_from_document(document["weights"], label='"weights"')
    return space, search_spec_from_document(document.get("search")), weights


def _cmd_optimize(args) -> int:
    from repro.optimize import DesignSpaceSearch, OptimizationReport

    space, spec, weights = _load_optimize_spec(args.spec)
    progress = console_progress(sys.stderr) if args.progress else None
    budget = args.budget if args.budget is not None else spec.budget
    strategy = args.strategy or spec.strategy
    store = None
    if getattr(args, "store", None):
        from repro.campaign import ResultStore

        store = ResultStore(args.store)
    try:
        search = DesignSpaceSearch(
            space, weights=weights, method=_resolve_method(args),
            jobs=args.jobs, progress=progress,
            warm_start=args.warm_start,
            bounds_fast_path=not args.no_bounds,
            store=store,
        )
        if strategy == "exhaustive":
            result = search.exhaustive()
        else:
            result = search.greedy(
                seed=spec.seed, restarts=spec.restarts,
                max_rounds=spec.max_rounds, move_limit=spec.move_limit,
            )
    finally:
        if store is not None:
            store.close()
    report = OptimizationReport.from_search(result, budget=budget)

    print(f"space: {result.space_size} candidates, "
          f"{len(result.evaluations)} evaluated ({result.strategy}"
          + (f", {result.rounds} accepted moves" if result.strategy == "greedy"
             else "")
          + ")")
    print(f"{'candidate':>36} {'E[reward]':>10} {'P(failed)':>10} "
          f"{'cost':>8} {'comps':>5}  frontier")
    for entry in result.evaluations:
        marks = []
        if entry in report.frontier:
            marks.append("*")
        if entry is report.recommended:
            marks.append("recommended")
        print(f"{entry.name:>36} {entry.expected_reward:10.4f} "
              f"{entry.failed_probability:10.6f} {entry.cost:8.2f} "
              f"{entry.component_count:5d}  {' '.join(marks)}")
    c = result.counters
    warm = ""
    if c.lqn_warm_starts:
        mean_distance = c.lqn_warm_distance / c.lqn_warm_starts
        warm = (
            f", {c.lqn_warm_starts} warm starts "
            f"(mean distance {mean_distance:.1f})"
        )
    stored = (
        f", {result.store_hits} store hits" if result.store_hits else ""
    )
    print(
        f"search: {c.distinct_configurations} distinct configurations, "
        f"{c.scan_cache_hits} scan-cache hits, "
        f"{c.lqn_bounds_skips} bounds skips; "
        f"lqn: {c.lqn_solves} solves, {c.lqn_cache_hits} cache hits "
        f"({100.0 * result.lqn_cache_hit_rate:.1f}% hit rate){warm}{stored}"
    )
    if budget is not None:
        if report.recommended is None:
            print(f"no candidate fits budget {budget}")
        else:
            print(f"recommended under budget {budget}: "
                  f"{report.recommended.name} "
                  f"(E[reward] {report.recommended.expected_reward:.4f}, "
                  f"cost {report.recommended.cost:.2f})")
    if args.json_out:
        Path(args.json_out).write_text(report.to_json())
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.csv_out:
        Path(args.csv_out).write_text(report.to_csv())
        print(f"wrote {args.csv_out}", file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import run_fuzz

    def log(outcome):
        if not args.progress:
            return
        status = "ok" if outcome.ok else "COUNTEREXAMPLE"
        extras = []
        if len(outcome.jobs_checked) > 1:
            extras.append(f"jobs={list(outcome.jobs_checked)}")
        if outcome.simulated:
            extras.append("sim")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(
            f"seed {outcome.seed}: {status} "
            f"({outcome.state_count} states, "
            f"{outcome.distinct_configurations} configurations, "
            f"{outcome.seconds:.2f}s){suffix}",
            file=sys.stderr,
        )

    store = None
    if args.store:
        from repro.campaign import ResultStore

        store = ResultStore(args.store)
    try:
        report = run_fuzz(
            seeds=args.seeds,
            seed_start=args.seed_start,
            time_budget=args.time_budget,
            backends=args.backends.split(",") if args.backends else None,
            jobs=args.jobs,
            sim_every=args.sim_every,
            parallel_every=args.parallel_every,
            shrink=not args.no_shrink,
            log=log,
            store=store,
        )
    finally:
        if store is not None:
            store.close()

    document = report.as_dict()
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.artifacts:
        directory = Path(args.artifacts)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "report.json").write_text(json.dumps(document, indent=2))
        entries = []
        for outcome in report.failures:
            if outcome.script is not None:
                path = directory / f"counterexample-{outcome.seed}.py"
                path.write_text(outcome.script)
            if outcome.corpus is not None:
                entries.append(outcome.corpus)
        if entries:
            (directory / "corpus-entries.json").write_text(
                json.dumps({"version": 1, "entries": entries}, indent=2)
            )
        print(f"wrote artifacts to {directory}", file=sys.stderr)

    budget_note = " (stopped by --time-budget)" if report.stopped_by_budget else ""
    store_note = (
        f", {report.store_hits} store hits" if report.store_hits else ""
    )
    print(
        f"verify: {len(report.outcomes)}/{report.seeds_requested} seeds, "
        f"{document['states_covered']} states covered, "
        f"{document['simulation_checks']} simulation checks, "
        f"{document['parallel_checks']} parallel checks, "
        f"{len(report.failures)} counterexample(s) in "
        f"{report.seconds:.1f}s{budget_note}{store_note}"
    )
    for outcome in report.failures:
        print(f"seed {outcome.seed}: "
              + "; ".join(d["detail"] for d in outcome.disagreements[:3]))
        if outcome.shrunken is not None:
            tasks = len(outcome.shrunken["ftlqn"]["tasks"])
            print(f"  shrunk to {tasks} task(s) in "
                  f"{len(outcome.shrink_steps)} step(s)")
    return 0 if report.ok else 1


def _cmd_campaign_run(args) -> int:
    from repro.campaign import (
        ResultStore,
        console_campaign_progress,
        load_campaign_spec,
        run_campaign,
    )

    spec = load_campaign_spec(args.spec)
    method = args.backend if args.backend is not None else args.method
    progress = (
        console_campaign_progress(sys.stderr) if args.progress else None
    )
    with ResultStore(args.store) as store:
        result = run_campaign(
            spec, store,
            workers=args.workers,
            method=method,
            epsilon=args.epsilon,
            progress=progress,
        )
    duplicates = (
        f" ({result.duplicate_points} duplicate spec points collapsed)"
        if result.duplicate_points else ""
    )
    print(
        f"campaign {result.campaign!r}: {result.total} points{duplicates} — "
        f"{result.store_hits} from store, {result.solved} solved in "
        f"{result.seconds:.1f}s"
    )
    if result.failed_checks:
        print(
            f"{len(result.failed_checks)} fuzz check(s) FAILED: "
            + ", ".join(result.failed_checks[:5])
            + ("..." if len(result.failed_checks) > 5 else "")
        )
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(result.to_dict(), indent=2)
        )
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_serve(args) -> int:
    from repro.service import AnalysisService, serve

    service = AnalysisService(
        workers=args.workers,
        batch_window=args.batch_window,
    )
    if args.preload:
        print("preloading catalog engines...", file=sys.stderr)
        service.preload()

    def ready(server) -> None:
        # Printed to stdout on purpose: with --port 0 the bound port is
        # the one piece of output scripts must parse.
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"({service.workers} workers)",
            flush=True,
        )

    serve(service, host=args.host, port=args.port, ready=ready)
    return 0


def _cmd_campaign_report(args) -> int:
    from repro.campaign import CampaignReport, ResultStore

    with ResultStore(args.store) as store:
        report = CampaignReport.from_store(store, campaign=args.campaign)
    summary = report.summary()
    scope = args.campaign or "all campaigns"
    print(
        f"store {args.store} ({scope}): {summary['solve_points']} solve "
        f"points, {summary['fuzz_points']} fuzz checks "
        f"({summary['fuzz_failures']} failed, "
        f"{summary['simulated_checks']} simulated), "
        f"{summary['total_seconds']:.1f} accumulated solve seconds"
    )
    best = summary["best_point"]
    if best is not None:
        print(
            f"best point: {best['name']} "
            f"(E[reward] {best['expected_reward']:.4f}, "
            f"P(failed) {best['failed_probability']:.6f})"
        )
    frontier = report.pareto_reward_failure()
    if frontier:
        print(f"reward/failure frontier ({len(frontier)} points):")
        for row in frontier[:10]:
            print(
                f"  {row.name}: E[reward] {row.expected_reward:.4f}, "
                f"P(failed) {row.failed_probability:.6f}"
            )
        if len(frontier) > 10:
            print(f"  ... and {len(frontier) - 10} more")
    costed = report.pareto_reward_cost()
    if costed:
        print(f"reward/cost frontier ({len(costed)} candidates):")
        for row in costed[:10]:
            print(
                f"  {row.name}: E[reward] {row.expected_reward:.4f}, "
                f"cost {row.cost:.2f}"
            )
    for row in report.failed_fuzz():
        details = "; ".join(
            d.get("detail", "?") for d in row.disagreements[:3]
        )
        print(f"fuzz FAILURE {row.name}: {details}")
    if args.json_out:
        Path(args.json_out).write_text(report.to_json())
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.csv_out:
        Path(args.csv_out).write_text(report.to_csv())
        print(f"wrote {args.csv_out}", file=sys.stderr)
    return 0


def _cmd_paper(args) -> int:
    from repro.experiments.figure11 import run_figure11
    from repro.experiments.reporting import (
        format_figure11,
        format_statespace,
        format_table1,
        format_table2,
    )
    from repro.experiments.selection import format_selection, run_selection
    from repro.experiments.sensitivity import format_sensitivity, run_sensitivity
    from repro.experiments.statespace import run_statespace
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    artifacts = {
        "table1": lambda: format_table1(run_table1()),
        "table2": lambda: format_table2(run_table2()),
        "figure11": lambda: format_figure11(run_figure11()),
        "statespace": lambda: format_statespace(run_statespace()),
        "sensitivity": lambda: format_sensitivity(run_sensitivity()),
        "selection": lambda: format_selection(run_selection()),
    }
    names = args.artifacts or list(artifacts)
    unknown = [name for name in names if name not in artifacts]
    if unknown:
        raise SerializationError(
            f"unknown artifact(s) {unknown}; choose from {list(artifacts)}"
        )
    for name in names:
        print(artifacts[name]())
        print()
    return 0


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree's
    ``repro.__version__`` when running uninstalled (PYTHONPATH=src)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def _workers_arg(value: str) -> int:
    """``--workers`` parser: a positive integer, or ``auto``/``0`` for
    one worker per CPU core."""
    if value == "auto":
        return 0
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coverage-aware performability of layered systems "
        "(Das & Woodside, DSN 2002 reproduction).",
        epilog="Scaling: `analyze --jobs N` parallelises the "
        "state-space scan over N worker processes (0 = all cores), and "
        "`analyze --progress` streams live progress and cost counters "
        "to stderr.  See docs/performance_guide.md for choosing "
        "--method and --jobs.",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_package_version()}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_model_args(sub, with_probs=True):
        sub.add_argument("model", help="FTLQN model JSON file")
        sub.add_argument("--mama", help="MAMA architecture JSON file")
        if with_probs:
            sub.add_argument("--probs", help="failure-probability JSON file")

    def add_backend_args(sub, with_epsilon=False):
        sub.add_argument(
            "--method",
            choices=method_choices(),
            default="factored",
            help="state-space scan method (default: factored)",
        )
        # No argparse choices= on purpose: unknown values are rejected
        # by normalize_method with a ModelError, giving the same
        # one-line `error:` rendering as every other model problem —
        # and the same dynamically derived list of valid names.
        sub.add_argument(
            "--backend",
            metavar="{" + ",".join(method_choices()) + "}",
            default=None,
            help="scan backend; overrides --method (interp = the "
            "paper's literal per-state scan, bits = the compiled "
            "bit-parallel kernel, factored = the app/mgmt-factored "
            "evaluator, bdd = exact symbolic evaluation for large N, "
            "bounded = most-probable states first with a rigorous "
            "reward interval)",
        )
        if with_epsilon:
            sub.add_argument(
                "--epsilon", type=float, default=DEFAULT_EPSILON,
                metavar="E",
                help="bounded backend only: stop once the unexplored "
                f"probability mass is at most E (default {DEFAULT_EPSILON})",
            )

    validate = commands.add_parser(
        "validate", help="validate model files"
    )
    add_model_args(validate, with_probs=False)
    validate.set_defaults(handler=_cmd_validate)

    analyze = commands.add_parser(
        "analyze", help="run the performability analysis",
        epilog="--jobs splits the application-state scan over worker "
        "processes; results are exact and independent of N.  --progress "
        "renders scan/lqn phase progress on stderr and prints the cost "
        "counters (states visited, cache hits, per-phase seconds) "
        "afterwards.  docs/performance_guide.md discusses when "
        "enumeration beats factored and how --jobs scales with cores.",
    )
    add_model_args(analyze)
    add_backend_args(analyze, with_epsilon=True)
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the state-space scan "
        "(default 1 = sequential; 0 = all cores)",
    )
    analyze.add_argument(
        "--progress", action="store_true",
        help="stream scan/LQN progress and cost counters to stderr",
    )
    analyze.add_argument(
        "--weights",
        help='reward weights per user group as JSON, e.g. \'{"UserA": 1}\'',
    )
    analyze.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the full-fidelity result document as JSON (machine "
        "precision — the printed table rounds to 6 decimals)",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    temporal = commands.add_parser(
        "temporal",
        help="transient performability curve and coverage erosion",
        epilog="The static scenario is lifted to failure/repair rates "
        "with ComponentAvailability.from_probability at --repair-rate, "
        "so the curve's steady-state limit reproduces `repro analyze` "
        "exactly; the transient points are exact product-form CTMC "
        "marginals evaluated through the same scan backends.  "
        "--latencies adds the detection-delay erosion curve (expected "
        "reward vs. mean detection latency); --heartbeat-period derives "
        "an architecture's latency from its notification-hop depth.  "
        "See docs/modeling_guide.md for a walk-through.",
    )
    temporal.add_argument(
        "model", nargs="?",
        help="FTLQN model JSON file (omit when using --scenario)",
    )
    temporal.add_argument("--mama", help="MAMA architecture JSON file")
    temporal.add_argument("--probs", help="failure-probability JSON file")
    temporal.add_argument(
        "--scenario", metavar="NAME",
        help="analyze a catalog scenario (see `repro serve` catalog) "
        "instead of model files; its temporal block supplies defaults",
    )
    temporal.add_argument(
        "--architecture", metavar="KEY",
        help="scenario architecture key (default: the scenario's "
        "default; 'none' = perfect knowledge)",
    )
    add_backend_args(temporal, with_epsilon=True)
    temporal.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per time point's state-space scan "
        "(default 1 = sequential; 0 = all cores)",
    )
    temporal.add_argument(
        "--repair-rate", type=float, default=None, metavar="MU",
        help="repair rate lifting static probabilities to rates "
        "(default 1.0, or the scenario's temporal block)",
    )
    temporal.add_argument(
        "--horizon", type=float, default=None, metavar="T",
        help="time-grid horizon (default 10.0, or the scenario's "
        "temporal block)",
    )
    temporal.add_argument(
        "--points", type=int, default=None, metavar="N",
        help="time-grid size (default 9, or the scenario's temporal "
        "block)",
    )
    temporal.add_argument(
        "--times", metavar="T1,T2,...",
        help="explicit comma-separated time grid (overrides --horizon)",
    )
    temporal.add_argument(
        "--latencies", metavar="L1,L2,...",
        help="mean detection latencies for the erosion curve",
    )
    temporal.add_argument(
        "--heartbeat-period", type=float, default=None, metavar="P",
        help="derive the architecture's detection latency from a "
        "heartbeat protocol with this period (uses the MAMA's "
        "notification-hop depth) and add it to the erosion curve",
    )
    temporal.add_argument(
        "--heartbeat-misses", type=int, default=2, metavar="K",
        help="heartbeat misses before a failure is declared (default 2)",
    )
    temporal.add_argument(
        "--heartbeat-hop-delay", type=float, default=0.0, metavar="D",
        help="per-notification-hop propagation delay (default 0)",
    )
    temporal.add_argument(
        "--weights",
        help='reward weights per user group as JSON, e.g. \'{"UserA": 1}\'',
    )
    temporal.add_argument(
        "--progress", action="store_true",
        help="stream scan/LQN progress to stderr",
    )
    temporal.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the curve, erosion points and aggregates as JSON",
    )
    temporal.set_defaults(handler=_cmd_temporal)

    importance = commands.add_parser(
        "importance", help="rank components by Birnbaum importance",
        epilog="Each component is conditioned up and down over one "
        "shared structure and LQN cache, so the extra cost per "
        "component is two state-space scans.  --jobs parallelises each "
        "scan; --json exports the full ranking with the aggregated "
        "cost counters.",
    )
    add_model_args(importance)
    add_backend_args(importance)
    importance.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per conditioned state-space scan "
        "(default 1 = sequential; 0 = all cores)",
    )
    importance.add_argument(
        "--progress", action="store_true",
        help="stream scan/LQN progress to stderr",
    )
    importance.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the ranking (records and counters) as JSON",
    )
    importance.set_defaults(handler=_cmd_importance)

    dot = commands.add_parser("dot", help="emit Graphviz renderings")
    dot.add_argument(
        "--kind", choices=("model", "fault-graph", "mama"), default="model"
    )
    add_model_args(dot, with_probs=False)
    dot.set_defaults(handler=_cmd_dot)

    sweep = commands.add_parser(
        "sweep", help="evaluate a multi-scenario sweep over shared caches",
        epilog="The spec file names the FTLQN model, the MAMA "
        "architecture variants, a base scenario, and the points to "
        "evaluate (see the module docstring for the JSON shape).  The "
        "engine shares one fault graph and know table per architecture "
        "and one LQN solution per distinct configuration across the "
        "whole sweep, so a probability sweep costs as many LQN solves "
        "as there are distinct configurations.  "
        "docs/performance_guide.md documents the spec and the caches.",
    )
    sweep.add_argument("spec", help="sweep specification JSON file")
    add_backend_args(sweep, with_epsilon=True)
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for each point's state-space scan "
        "(default 1 = sequential; 0 = all cores)",
    )
    sweep.add_argument(
        "--warm-start", action="store_true",
        help="seed each new configuration's LQN solve from its nearest "
        "already-solved neighbour (same fixed points within the solver "
        "tolerance, but results are no longer bit-identical to cold "
        "per-point runs)",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="stream sweep/scan/LQN progress to stderr",
    )
    sweep.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the full sweep result (points, records, counters) "
        "as JSON",
    )
    sweep.add_argument(
        "--csv", dest="csv_out", metavar="FILE",
        help="write one CSV row per point (reward, failure probability, "
        "average throughputs)",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    optimize = commands.add_parser(
        "optimize", help="search a design space of management architectures",
        epilog="The spec file names the FTLQN model, a parametric "
        "candidate space (manager topologies × monitoring styles × "
        "reliability upgrades, each candidate costed), optional "
        "explicit architectures, and the search strategy (see "
        "repro/optimize/spec.py for the JSON shape).  All candidates "
        "are evaluated over one shared sweep engine, so the search "
        "solves one LQN per distinct configuration in the space.  The "
        "report lists every candidate, marks the Pareto frontier over "
        "(reward, cost, component count), and recommends the best "
        "candidate under --budget.  docs/modeling_guide.md documents "
        "the spec, the cost model and the frontier semantics.",
    )
    optimize.add_argument("spec", help="optimize specification JSON file")
    optimize.add_argument(
        "--strategy", choices=("exhaustive", "greedy"),
        help="override the spec's search strategy",
    )
    optimize.add_argument(
        "--budget", type=float, metavar="B",
        help="recommend the best candidate with cost <= B "
        "(overrides the spec's search.budget)",
    )
    add_backend_args(optimize)
    optimize.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for each candidate's state-space scan "
        "(default 1 = sequential; 0 = all cores)",
    )
    optimize.add_argument(
        "--warm-start", action="store_true",
        help="seed each new configuration's LQN solve from its nearest "
        "already-solved neighbour (faster, not bit-identical to cold "
        "solves)",
    )
    optimize.add_argument(
        "--no-bounds", action="store_true",
        help="disable the greedy bounds fast path (by default, "
        "candidate moves whose guaranteed throughput upper bound "
        "cannot beat the incumbent are skipped without solving)",
    )
    optimize.add_argument(
        "--progress", action="store_true",
        help="stream sweep/scan/LQN progress to stderr",
    )
    optimize.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the full report (candidates, frontier, counters) "
        "as JSON",
    )
    optimize.add_argument(
        "--csv", dest="csv_out", metavar="FILE",
        help="write one CSV row per candidate (reward, cost, frontier "
        "and recommendation flags)",
    )
    optimize.add_argument(
        "--store", metavar="FILE",
        help="memoize candidate evaluations in a campaign result store "
        "(sqlite); re-runs and campaigns sharing the store skip "
        "already-solved candidates",
    )
    optimize.set_defaults(handler=_cmd_optimize)

    campaign = commands.add_parser(
        "campaign",
        help="run resumable point campaigns against a persistent store",
        epilog="A campaign spec names one FTLQN model, MAMA "
        "architecture variants, a base scenario and a list of "
        "workloads (sweep grids, explicit points, design-space "
        "candidate sets, fuzz seed ranges); `campaign run` expands it "
        "into content-addressed points, skips everything the store "
        "already holds, and shards the rest over --workers processes, "
        "committing each result as it lands — kill it anywhere and "
        "rerun to resume with zero recomputation.  `campaign report` "
        "renders JSON/CSV summaries and Pareto frontiers offline from "
        "the store.  See docs/performance_guide.md §11 and "
        "examples/campaign/.",
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_commands.add_parser(
        "run", help="run (or resume) a campaign spec against a store"
    )
    campaign_run.add_argument("spec", help="campaign specification JSON file")
    campaign_run.add_argument(
        "--store", required=True, metavar="FILE",
        help="result-store sqlite file (created if absent)",
    )
    campaign_run.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N",
        help="worker processes to shard points over "
        "(default 1 = run inline; 'auto' or 0 = all cores)",
    )
    campaign_run.add_argument(
        "--method", choices=method_choices(), default=None,
        help="override the spec's scan method",
    )
    campaign_run.add_argument(
        "--backend",
        metavar="{" + ",".join(method_choices()) + "}",
        default=None,
        help="scan backend; overrides --method and the spec",
    )
    campaign_run.add_argument(
        "--epsilon", type=float, default=None, metavar="E",
        help="bounded backend only: override the spec's mass bound",
    )
    campaign_run.add_argument(
        "--progress", action="store_true",
        help="stream per-point campaign progress and ETA to stderr",
    )
    campaign_run.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the run summary (hits, solves, counters) as JSON",
    )
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_report = campaign_commands.add_parser(
        "report", help="render offline reports from a result store"
    )
    campaign_report.add_argument(
        "--store", required=True, metavar="FILE",
        help="result-store sqlite file to read",
    )
    campaign_report.add_argument(
        "--campaign", metavar="NAME", default=None,
        help="restrict to one campaign name (default: whole store)",
    )
    campaign_report.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the full report (rows, frontiers, counters) as JSON",
    )
    campaign_report.add_argument(
        "--csv", dest="csv_out", metavar="FILE",
        help="write one CSV row per solve point",
    )
    campaign_report.set_defaults(handler=_cmd_campaign_report)

    serve = commands.add_parser(
        "serve",
        help="run the warm-cache analysis HTTP daemon",
        epilog="The daemon keeps one SweepEngine per catalog scenario "
        "warm across requests (structure, scan and LQN caches) and "
        "coalesces concurrent uncached LQN solves into single batched "
        "calls.  Routes: GET /healthz /stats /catalog "
        "/scenarios/<name>; POST /analyze /sweep /optimize (JSON in, "
        "JSON out; sweep accepts \"stream\": true for NDJSON "
        "progress).  Responses are bit-identical to the one-shot CLI "
        "on the same inputs.  See docs/performance_guide.md §12.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8000, metavar="N",
        help="TCP port (default 8000; 0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--workers", type=_workers_arg, default=0, metavar="N",
        help="solver worker threads (default 'auto' = one per CPU core)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=None, metavar="SECONDS",
        help="micro-batching pile-up window (default 0.002; 0 disables "
        "the wait but still coalesces whatever raced in)",
    )
    serve.add_argument(
        "--preload", action="store_true",
        help="derive every catalog scenario's analysis structures "
        "before accepting requests",
    )
    serve.set_defaults(handler=_cmd_serve)

    verify = commands.add_parser(
        "verify", help="fuzz the analytic backends against each other",
        epilog="Each seed draws a random layered scenario (perfect "
        "components, shared processors, deep backup chains, unreliable "
        "connectors, common causes) and replays it through every "
        "selected backend, demanding 1e-12 agreement with the "
        "interpreted reference scan.  Every --parallel-every-th seed "
        "re-runs the backends with --jobs worker processes and every "
        "--sim-every-th seed cross-checks availability and expected "
        "reward against the Monte-Carlo simulation inside a Student-t "
        "confidence interval.  Disagreements are shrunk to minimal "
        "counterexamples; exit status is 1 when any were found (see "
        "docs/testing_guide.md for triage).",
    )
    verify.add_argument(
        "--seeds", type=int, default=100, metavar="N",
        help="number of generator seeds to check (default 100)",
    )
    verify.add_argument(
        "--seed-start", type=int, default=0, metavar="S",
        help="first seed of the range (default 0)",
    )
    verify.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new seeds after this much wall-clock time",
    )
    verify.add_argument(
        "--backends", metavar="LIST", default=None,
        help="comma-separated backends to cross-check "
        "(default: interp,factored,bits)",
    )
    verify.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for the periodic parallel re-check "
        "(default 2)",
    )
    verify.add_argument(
        "--sim-every", type=int, default=10, metavar="K",
        help="run the simulation cross-check every K-th seed "
        "(default 10; 0 disables)",
    )
    verify.add_argument(
        "--parallel-every", type=int, default=25, metavar="K",
        help="re-run the backends with --jobs workers every K-th seed "
        "(default 25; 0 disables)",
    )
    verify.add_argument(
        "--no-shrink", action="store_true",
        help="report disagreements without shrinking them",
    )
    verify.add_argument(
        "--progress", action="store_true",
        help="print one line per seed to stderr",
    )
    verify.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="write the full campaign report as JSON",
    )
    verify.add_argument(
        "--artifacts", metavar="DIR",
        help="write report.json plus repro scripts and corpus entries "
        "for any counterexamples into DIR",
    )
    verify.add_argument(
        "--store", metavar="FILE", default=None,
        help="memoize checks in a campaign result store (sqlite): "
        "already-stored seeds are skipped, fresh checks are committed "
        "as they finish, so an interrupted campaign resumes where it "
        "died",
    )
    verify.set_defaults(handler=_cmd_verify)

    paper = commands.add_parser(
        "paper", help="regenerate the paper's evaluation artifacts"
    )
    paper.add_argument(
        "artifacts", nargs="*",
        help="table1 table2 figure11 statespace sensitivity selection "
        "(default: all)",
    )
    paper.set_defaults(handler=_cmd_paper)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
