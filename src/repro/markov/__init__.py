"""Continuous-time Markov chains and Markov-reward models.

The paper's analysis uses static steady-state failure probabilities;
this package supplies the dynamic underpinning and the §7 extension:

* :mod:`repro.markov.ctmc` — generator construction, steady-state and
  transient solution, expected reward rates.
* :mod:`repro.markov.uniformization` — transient probabilities by
  uniformization (Jensen's method).
* :mod:`repro.markov.availability` — two-state failure/repair component
  models; converts (failure rate, repair rate) pairs into the static
  probabilities the core analysis consumes, and builds the exact joint
  chain for small systems.
* :mod:`repro.markov.detection` — the detection/reconfiguration-delay
  extension sketched in §7 (following [29]): a Markov-reward model over
  (component state, active configuration) pairs where reconfiguration
  happens at a finite rate rather than instantaneously.
"""

from repro.markov.ctmc import CTMC
from repro.markov.uniformization import transient_distribution
from repro.markov.availability import (
    ComponentAvailability,
    independent_components_ctmc,
    steady_state_unavailability,
    validate_rates,
)
from repro.markov.detection import DelayModelResult, detection_delay_model
from repro.markov.transient import (
    TransientPerformability,
    TransientPoint,
    transient_unavailability,
)

__all__ = [
    "CTMC",
    "ComponentAvailability",
    "DelayModelResult",
    "TransientPerformability",
    "TransientPoint",
    "detection_delay_model",
    "independent_components_ctmc",
    "steady_state_unavailability",
    "transient_distribution",
    "transient_unavailability",
    "validate_rates",
]
