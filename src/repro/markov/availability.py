"""Two-state failure/repair component models.

The paper treats component failure as a static probability; the usual
dynamic justification is an alternating-renewal (2-state Markov)
component with failure rate λ and repair rate μ, whose steady-state
unavailability is λ/(λ+μ).  This module provides:

* :class:`ComponentAvailability` — the (λ, μ) pair with conversions in
  both directions;
* :func:`steady_state_unavailability` — the closed form;
* :func:`independent_components_ctmc` — the exact joint chain over a
  set of independent components (exponential state-space; intended for
  small component sets and for validating the product-form shortcut);
* :func:`configuration_probabilities_from_rates` — runs the paper's
  static analysis at the steady-state probabilities implied by dynamic
  rates, the bridge between the Markov world and the core algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from collections.abc import Mapping

from repro.core.performability import PerformabilityAnalyzer
from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel
from repro.mama.model import MAMAModel
from repro.markov.ctmc import CTMC


def validate_rates(
    failure_rate: float, repair_rate: float, *, component: str | None = None
) -> None:
    """Reject invalid (λ, μ) pairs with a :class:`ModelError`.

    Finiteness is checked explicitly: ``NaN < 0`` is ``False``, so a
    plain range test silently accepts NaN rates and lets them poison
    every generator built from them.
    """
    ok = (
        math.isfinite(failure_rate)
        and math.isfinite(repair_rate)
        and failure_rate >= 0
        and repair_rate > 0
    )
    if not ok:
        where = "" if component is None else f"component {component!r}: "
        raise ModelError(
            f"{where}need finite failure_rate >= 0 and repair_rate > 0, "
            f"got ({failure_rate!r}, {repair_rate!r})"
        )


def steady_state_unavailability(failure_rate: float, repair_rate: float) -> float:
    """λ/(λ+μ) — long-run fraction of time a 2-state component is down."""
    validate_rates(failure_rate, repair_rate)
    return failure_rate / (failure_rate + repair_rate)


@dataclass(frozen=True)
class ComponentAvailability:
    """Failure/repair rates of one component.

    ``from_probability`` builds rates matching a target steady-state
    failure probability at a given repair rate (mean time to repair
    1/μ).
    """

    failure_rate: float
    repair_rate: float

    def __post_init__(self) -> None:
        validate_rates(self.failure_rate, self.repair_rate)

    @property
    def unavailability(self) -> float:
        return steady_state_unavailability(self.failure_rate, self.repair_rate)

    @property
    def availability(self) -> float:
        return 1.0 - self.unavailability

    @staticmethod
    def from_probability(
        failure_probability: float, *, repair_rate: float = 1.0
    ) -> "ComponentAvailability":
        if not 0 <= failure_probability < 1:  # NaN fails this comparison too
            raise ModelError(
                f"failure probability must be in [0, 1), "
                f"got {failure_probability!r}"
            )
        failure_rate = (
            repair_rate * failure_probability / (1.0 - failure_probability)
        )
        return ComponentAvailability(
            failure_rate=failure_rate, repair_rate=repair_rate
        )


def independent_components_ctmc(
    components: Mapping[str, ComponentAvailability],
) -> CTMC:
    """The exact joint CTMC of independent 2-state components.

    States are frozensets of the *down* component names.  The state
    space is 2^n; intended for n ≲ 15 and for cross-checking the
    product-form marginals.
    """
    names = sorted(components)
    if len(names) > 20:
        raise ModelError(
            f"joint chain over {len(names)} components is too large"
        )
    for name in names:
        rates = components[name]
        validate_rates(rates.failure_rate, rates.repair_rate, component=name)
    chain = CTMC()
    for down_tuple in product((False, True), repeat=len(names)):
        down = frozenset(n for n, d in zip(names, down_tuple) if d)
        chain.add_state(down)
        for name in names:
            rates = components[name]
            if name in down:
                chain.add_transition(
                    down, down - {name}, rate=rates.repair_rate
                )
            else:
                chain.add_transition(
                    down, down | {name}, rate=rates.failure_rate
                )
    return chain


def configuration_probabilities_from_rates(
    ftlqn: FTLQNModel,
    mama: MAMAModel | None,
    rates: Mapping[str, ComponentAvailability],
    *,
    method: str = "factored",
) -> dict[frozenset[str] | None, float]:
    """Static configuration probabilities at the rates' steady state.

    Because component processes are independent, the joint steady-state
    probability of any up/down pattern is the product of marginals —
    exactly the static model of the paper.  This helper converts rates
    to probabilities and runs the core analysis.
    """
    failure_probs = {
        name: availability.unavailability
        for name, availability in rates.items()
    }
    analyzer = PerformabilityAnalyzer(ftlqn, mama, failure_probs=failure_probs)
    return analyzer.configuration_probabilities(method=method)
