"""Transient (time-dependent) performability.

The steady-state analysis answers "what fraction of time, eventually";
operators also ask "what will the system look like *t* hours after we
bring it up clean?".  Because component failure/repair processes are
independent 2-state chains, the joint transient distribution is product
form: starting from all-up, component *c* is down at time *t* with
probability

    u_c(t) = (λ_c / (λ_c + μ_c)) · (1 − e^{−(λ_c+μ_c)·t}),

so the *exact* configuration probabilities at time *t* are obtained by
running the static coverage analysis at the time-indexed failure
probabilities.  No state-space blow-up: the knowledge semantics is
evaluated as usual, only the component marginals move.

(The one approximation inherited from the paper's framework: knowledge
and reconfiguration are still instantaneous; combine with
:mod:`repro.markov.detection` for latency effects.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.performability import PerformabilityAnalyzer
from repro.core.rewards import RewardFunction
from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel
from repro.mama.model import MAMAModel
from repro.markov.availability import ComponentAvailability


def transient_unavailability(
    availability: ComponentAvailability, t: float
) -> float:
    """P(component down at time t | up at time 0)."""
    if t < 0:
        raise ModelError("time must be >= 0")
    lam = availability.failure_rate
    mu = availability.repair_rate
    if lam == 0:
        return 0.0
    total = lam + mu
    return (lam / total) * (1.0 - math.exp(-total * t))


@dataclass(frozen=True)
class TransientPoint:
    """Snapshot of the system at one time."""

    time: float
    expected_reward: float
    failed_probability: float
    configuration_probabilities: dict[frozenset[str] | None, float]


class TransientPerformability:
    """Expected reward and failure probability as functions of time.

    Parameters mirror :class:`~repro.core.PerformabilityAnalyzer`, with
    failure/repair *rates* instead of static probabilities.  LQN
    solutions are computed once per distinct configuration and shared
    across all evaluation times.

    Example
    -------
    >>> from repro.experiments.figure1 import figure1_system
    >>> from repro.markov.availability import ComponentAvailability
    >>> rates = {"Server1": ComponentAvailability.from_probability(0.1)}
    >>> curve = TransientPerformability(figure1_system(), None, rates)
    >>> points = curve.evaluate([0.0, 1.0, 10.0])
    >>> points[0].failed_probability
    0.0
    """

    def __init__(
        self,
        ftlqn: FTLQNModel,
        mama: MAMAModel | None,
        rates: Mapping[str, ComponentAvailability],
        *,
        reward: RewardFunction | None = None,
        method: str = "factored",
    ):
        self._ftlqn = ftlqn
        self._mama = mama
        self._rates = dict(rates)
        self._reward = reward
        self._method = method
        # One analyzer provides the reward machinery; its probabilities
        # are never used directly.
        self._reference = PerformabilityAnalyzer(
            ftlqn,
            mama,
            failure_probs={
                name: availability.unavailability
                for name, availability in self._rates.items()
            },
            reward=reward,
        )
        self._reward_cache: dict[frozenset[str], float] = {}

    def _reward_of(self, configuration: frozenset[str]) -> float:
        value = self._reward_cache.get(configuration)
        if value is None:
            results = self._reference.performance_of(configuration)
            value = self._reference._reward(configuration, results)
            self._reward_cache[configuration] = value
        return value

    def at(self, t: float) -> TransientPoint:
        """Exact configuration probabilities and reward at time ``t``."""
        probs = {
            name: transient_unavailability(availability, t)
            for name, availability in self._rates.items()
        }
        analyzer = PerformabilityAnalyzer(
            self._ftlqn, self._mama, failure_probs=probs, reward=self._reward
        )
        configuration_probs = analyzer.configuration_probabilities(
            method=self._method
        )
        expected = 0.0
        failed = 0.0
        for configuration, probability in configuration_probs.items():
            if configuration is None:
                failed = probability
                continue
            expected += probability * self._reward_of(configuration)
        return TransientPoint(
            time=t,
            expected_reward=expected,
            failed_probability=failed,
            configuration_probabilities=configuration_probs,
        )

    def evaluate(self, times: Sequence[float]) -> list[TransientPoint]:
        """Snapshots at each time, in the given order."""
        return [self.at(t) for t in times]

    def steady_state(self) -> TransientPoint:
        """The t → ∞ limit (equals the static analysis)."""
        return self.at(float("inf"))
