"""Continuous-time Markov chains over hashable state labels.

A :class:`CTMC` is built by adding transitions (rates); it exposes the
infinitesimal generator, the steady-state distribution (via a dense
linear solve with the normalisation condition), transient distributions
(delegated to uniformization), and Markov-reward measures.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

import numpy as np

from repro.errors import SolverError


class CTMC:
    """A finite CTMC assembled from labelled transitions.

    Example
    -------
    >>> chain = CTMC()
    >>> chain.add_transition("up", "down", rate=0.1)
    >>> chain.add_transition("down", "up", rate=1.0)
    >>> pi = chain.steady_state()
    >>> round(pi["down"], 4)
    0.0909
    """

    def __init__(self) -> None:
        self._index: dict[Hashable, int] = {}
        self._states: list[Hashable] = []
        self._transitions: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------

    def add_state(self, state: Hashable) -> int:
        """Register a state (idempotent); returns its index."""
        index = self._index.get(state)
        if index is None:
            index = len(self._states)
            self._index[state] = index
            self._states.append(state)
        return index

    def add_transition(self, source: Hashable, target: Hashable, *, rate: float) -> None:
        """Add (or accumulate) a transition rate between two states."""
        if rate < 0:
            raise SolverError(f"transition rate must be >= 0, got {rate}")
        if source == target:
            raise SolverError("self-transitions are meaningless in a CTMC")
        if rate == 0:
            self.add_state(source)
            self.add_state(target)
            return
        i = self.add_state(source)
        j = self.add_state(target)
        self._transitions[(i, j)] = self._transitions.get((i, j), 0.0) + rate

    @property
    def states(self) -> list[Hashable]:
        return list(self._states)

    def __len__(self) -> int:
        return len(self._states)

    # ------------------------------------------------------------------

    def generator(self) -> np.ndarray:
        """The infinitesimal generator Q (dense, rows sum to zero)."""
        n = len(self._states)
        q = np.zeros((n, n))
        for (i, j), rate in self._transitions.items():
            q[i, j] += rate
        np.fill_diagonal(q, q.diagonal() - q.sum(axis=1))
        return q

    def steady_state(self) -> dict[Hashable, float]:
        """The stationary distribution π (πQ = 0, Σπ = 1).

        Raises
        ------
        SolverError
            If the chain is empty or the linear system is singular
            beyond the usual rank-1 deficiency (e.g. two closed
            communicating classes — no unique stationary distribution).
        """
        n = len(self._states)
        if n == 0:
            raise SolverError("CTMC has no states")
        if n == 1:
            return {self._states[0]: 1.0}
        q = self.generator()
        # Replace one balance equation with the normalisation condition.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "stationary distribution is not unique (reducible chain?)"
            ) from exc
        if np.any(pi < -1e-9):
            raise SolverError(
                "stationary solve produced negative probabilities "
                "(reducible chain?)"
            )
        pi = np.clip(pi, 0.0, None)
        pi = pi / pi.sum()
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def transient(
        self,
        initial: Mapping[Hashable, float],
        t: float,
        *,
        tolerance: float = 1e-12,
    ) -> dict[Hashable, float]:
        """Distribution at time ``t`` from an initial distribution."""
        from repro.markov.uniformization import transient_distribution

        return transient_distribution(self, initial, t, tolerance=tolerance)

    def expected_reward_rate(
        self,
        rewards: Mapping[Hashable, float],
        distribution: Mapping[Hashable, float] | None = None,
    ) -> float:
        """Σ_s π(s) · r(s); uses the steady state when no distribution
        is given.  States missing from ``rewards`` earn 0."""
        if distribution is None:
            distribution = self.steady_state()
        return sum(
            probability * rewards.get(state, 0.0)
            for state, probability in distribution.items()
        )

    def initial_vector(self, initial: Mapping[Hashable, float]) -> np.ndarray:
        """Dense probability vector in this chain's state order."""
        vector = np.zeros(len(self._states))
        for state, probability in initial.items():
            index = self._index.get(state)
            if index is None:
                raise SolverError(f"unknown state {state!r}")
            vector[index] = probability
        total = vector.sum()
        if not np.isclose(total, 1.0):
            raise SolverError(f"initial distribution sums to {total}, not 1")
        return vector
