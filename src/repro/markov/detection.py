"""Detection/reconfiguration delay extension (§7, following [29]).

The paper's core model assumes reconfiguration is instantaneous once
knowledge allows it; §7 sketches an extension with delays to detect a
failure and to reconfigure, warning of state-space growth.  This module
implements that extension as a Markov-reward model over pairs

    (down-set of application components, active configuration),

where component failures/repairs change the down-set at their rates
while the *active* configuration only catches up at a finite
``detection_rate`` (mean latency = 1/rate, pooling heartbeat interval,
notification propagation and reconfiguration time).  While the active
configuration is stale, a user group earns reward only if everything
the stale configuration routes it through is still up.

As ``detection_rate → ∞`` the expected reward converges to the paper's
instantaneous model (validated in ``tests/markov``); as the rate falls,
reward degrades — quantifying the §7 trade-off between heartbeat
traffic and coverage.

Knowledge is taken as perfect here (the architecture-coverage and the
latency questions are orthogonal; combining both multiplies the state
space, exactly the blow-up §7 warns about).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.configuration import group_support
from repro.errors import ModelError
from repro.ftlqn.fault_graph import PERFECT_KNOWLEDGE, build_fault_graph
from repro.ftlqn.model import FTLQNModel
from repro.markov.availability import ComponentAvailability, validate_rates
from repro.markov.ctmc import CTMC

#: Marker for "no operational configuration" in chain states.
FAILED = "__failed__"


@dataclass(frozen=True)
class DelayModelResult:
    """Solution of the detection-delay Markov-reward model.

    Attributes
    ----------
    expected_reward:
        Steady-state expected reward rate with the given detection rate.
    instantaneous_reward:
        The same system with instantaneous reconfiguration (the paper's
        base model) — the detection-rate → ∞ limit.
    stale_probability:
        Steady-state probability that the active configuration differs
        from the one instantaneous reconfiguration would use.
    state_count:
        Number of (down-set, active configuration) states in the chain.
    chain:
        The underlying CTMC (for further transient analysis).
    """

    expected_reward: float
    instantaneous_reward: float
    stale_probability: float
    state_count: int
    chain: CTMC


def detection_delay_model(
    ftlqn: FTLQNModel,
    rates: Mapping[str, ComponentAvailability],
    group_rewards: Mapping[frozenset[str], Mapping[str, float]],
    *,
    detection_rate: float,
) -> DelayModelResult:
    """Build and solve the delay extension for an FTLQN system.

    Parameters
    ----------
    rates:
        Failure/repair rates of the unreliable application components
        (tasks/processors absent from the mapping never fail).
    group_rewards:
        Per operational configuration, the reward rate earned by each
        user group while its path is up (e.g. w_g · f_g from the LQN
        solution of that configuration).
    detection_rate:
        Rate at which a pending reconfiguration completes (1 / mean
        detection+reconfiguration latency).
    """
    if not (math.isfinite(detection_rate) and detection_rate > 0):
        raise ModelError(
            f"detection_rate must be positive and finite, "
            f"got {detection_rate!r}"
        )
    component_names = ftlqn.component_names()
    unknown = [name for name in rates if name not in component_names]
    if unknown:
        raise ModelError(f"rates mention unknown components: {sorted(unknown)}")
    for name, availability in rates.items():
        validate_rates(
            availability.failure_rate, availability.repair_rate,
            component=name,
        )

    graph = build_fault_graph(ftlqn)
    names = sorted(rates)

    def target_configuration(down: frozenset[str]):
        state = {
            leaf.name: leaf.name not in down for leaf in graph.leaves()
        }
        return graph.evaluate(state, PERFECT_KNOWLEDGE).configuration

    def config_key(configuration):
        return FAILED if configuration is None else configuration

    def reward_of(down: frozenset[str], active) -> float:
        if active == FAILED:
            return 0.0
        rewards = group_rewards.get(active)
        if rewards is None:
            raise ModelError(
                f"group_rewards missing configuration {sorted(active)}"
            )
        total = 0.0
        for group, value in rewards.items():
            support = group_support(ftlqn, active, group)
            if not (support & down):
                total += value
        return total

    chain = CTMC()
    rewards_by_state: dict[object, float] = {}
    stale_states: set[object] = set()
    instantaneous = 0.0

    start_down: frozenset[str] = frozenset()
    start = (start_down, config_key(target_configuration(start_down)))
    frontier = [start]
    seen = {start}
    down_probability_cache: dict[frozenset[str], float] = {}

    while frontier:
        state = frontier.pop()
        down, active = state
        chain.add_state(state)
        rewards_by_state[state] = reward_of(down, active)
        target = config_key(target_configuration(down))
        if target != active:
            stale_states.add(state)
            successor = (down, target)
            chain.add_transition(
                state, successor, rate=detection_rate
            )
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
        for name in names:
            availability = rates[name]
            if name in down:
                next_down = down - {name}
                rate = availability.repair_rate
            else:
                next_down = down | {name}
                rate = availability.failure_rate
            if rate == 0:
                # A zero-rate edge (a component that never fails) leads
                # nowhere; expanding its successor would double the
                # reachable state space per such component for nothing.
                continue
            successor = (next_down, active)
            chain.add_transition(state, successor, rate=rate)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)

    steady = chain.steady_state()
    expected = chain.expected_reward_rate(rewards_by_state, steady)
    stale_probability = sum(
        probability
        for state, probability in steady.items()
        if state in stale_states
    )

    # Instantaneous baseline: weight each down-set by its product-form
    # probability, reward from its own target configuration.
    def down_probability(down: frozenset[str]) -> float:
        cached = down_probability_cache.get(down)
        if cached is None:
            cached = 1.0
            for name in names:
                u = rates[name].unavailability
                cached *= u if name in down else 1.0 - u
            down_probability_cache[down] = cached
        return cached

    down_sets = {state[0] for state in steady}
    for down in down_sets:
        active = config_key(target_configuration(down))
        instantaneous += down_probability(down) * reward_of(down, active)

    return DelayModelResult(
        expected_reward=expected,
        instantaneous_reward=instantaneous,
        stale_probability=stale_probability,
        state_count=len(chain),
        chain=chain,
    )
