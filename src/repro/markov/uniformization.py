"""Transient CTMC solution by uniformization (Jensen's method).

Given generator Q with uniformization rate Λ ≥ max |Q_ii|, the
probability vector at time t is

    p(t) = Σ_k e^{−Λt} (Λt)^k / k! · p(0) P^k,     P = I + Q/Λ.

The Poisson series is truncated when the accumulated mass exceeds
1 − tolerance.  Numerically robust for the moderate Λt values used in
availability models; no matrix exponentials required.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

import numpy as np

from repro.errors import SolverError
from repro.markov.ctmc import CTMC


def transient_distribution(
    chain: CTMC,
    initial: Mapping[Hashable, float],
    t: float,
    *,
    tolerance: float = 1e-12,
    max_terms: int = 1_000_000,
) -> dict[Hashable, float]:
    """Distribution of the chain at time ``t``.

    Raises
    ------
    SolverError
        For negative ``t`` or if the Poisson series fails to converge
        within ``max_terms`` (Λt too large for this method).
    """
    if t < 0:
        raise SolverError("transient time must be >= 0")
    states = chain.states
    vector = chain.initial_vector(initial)
    if t == 0 or len(states) == 1:
        return {state: float(vector[i]) for i, state in enumerate(states)}

    q = chain.generator()
    lam = float(np.max(-np.diag(q)))
    if lam == 0.0:
        return {state: float(vector[i]) for i, state in enumerate(states)}
    p_matrix = np.eye(len(states)) + q / lam

    lt = lam * t
    # Poisson(Λt) weights, built iteratively to avoid overflow.
    log_weight = -lt  # log of e^{-Λt} (Λt)^0 / 0!
    weight = np.exp(log_weight)
    accumulated = weight
    result = weight * vector
    term = vector
    k = 0
    while accumulated < 1.0 - tolerance:
        k += 1
        if k > max_terms:
            raise SolverError(
                f"uniformization did not converge within {max_terms} terms "
                f"(lambda*t = {lt:.3g})"
            )
        term = term @ p_matrix
        log_weight += np.log(lt) - np.log(k)
        weight = np.exp(log_weight)
        result = result + weight * term
        accumulated += weight
    # Renormalise the truncation remainder onto the last computed term.
    result = result + (1.0 - accumulated) * term
    result = np.clip(result, 0.0, None)
    result = result / result.sum()
    return {state: float(result[i]) for i, state in enumerate(states)}
