"""Distributed campaign runner with a persistent result store.

A *campaign* is the unit of large-scale work on top of the fast
per-point machinery: hundreds (or hundreds of thousands) of scenario
points — sweep grids, optimizer candidate sets, fuzz seed ranges —
solved once, persisted forever, and reported on offline.  The
subsystem is the data layer ROADMAP item 5's analysis service will sit
on, modelled on simulation-campaign managers (cluster manager +
memoizer + results store + progress) from the `slp` lineage cited in
PAPERS.md.

Four pieces, importable separately:

* :mod:`repro.campaign.keys` — content-addressed point keys: every
  campaign point (models + failure probabilities + reward weights +
  backend + ε + solver tolerances + schema version) canonically
  serialized and hashed, stable across processes and interpreter runs.
* :mod:`repro.campaign.store` — the persistent result store: one
  sqlite file in WAL mode, one row per solved point keyed by its
  content address, holding the full-fidelity result document
  (rewards, intervals, configuration records, counters, timing).
* :mod:`repro.campaign.spec` — campaign specifications and workload
  producers: a spec enumerates sweep grids, explicit points, design-
  space candidate sets and fuzz seed ranges, and compiles them into a
  flat list of content-addressed points.
* :mod:`repro.campaign.runner` — the multi-process dispatcher: shards
  pending (not-yet-stored) points over worker processes each hosting
  a warm :class:`~repro.core.sweep.SweepEngine`, streams results back
  incrementally with progress/ETA, and commits each finished point to
  the store immediately — kill it anywhere, rerun the same spec, and
  it completes from the store with zero recomputation.
* :mod:`repro.campaign.report` — offline reporting decoupled from
  execution: JSON/CSV summaries, Pareto frontiers and per-counter
  aggregates rendered straight from the store.
"""

from repro.campaign.keys import (
    CODE_SCHEMA_VERSION,
    canonical_json,
    fingerprint,
    fuzz_point_key,
    solve_point_key,
    solver_tolerances,
    temporal_point_key,
)
from repro.campaign.store import ResultStore, StoredResult
from repro.campaign.spec import (
    CampaignSpec,
    CompiledCampaign,
    CompiledPoint,
    TemporalWorkload,
    campaign_spec_from_document,
    load_campaign_spec,
)
from repro.campaign.runner import (
    CampaignProgress,
    CampaignResult,
    console_campaign_progress,
    run_campaign,
)
from repro.campaign.report import CampaignReport

__all__ = [
    "CODE_SCHEMA_VERSION",
    "CampaignProgress",
    "CampaignReport",
    "CampaignResult",
    "CampaignSpec",
    "CompiledCampaign",
    "CompiledPoint",
    "ResultStore",
    "StoredResult",
    "TemporalWorkload",
    "campaign_spec_from_document",
    "canonical_json",
    "console_campaign_progress",
    "fingerprint",
    "fuzz_point_key",
    "load_campaign_spec",
    "run_campaign",
    "solve_point_key",
    "solver_tolerances",
    "temporal_point_key",
]
