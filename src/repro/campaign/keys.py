"""Content-addressed point keys.

A campaign point's key is the SHA-256 of a *canonical* JSON rendering
of everything its result depends on:

* the FTLQN model and MAMA architecture documents (via the stable
  serializers of :mod:`repro.ftlqn.serialize` /
  :mod:`repro.mama.serialize`; FTLQN documents are hashed verbatim —
  their entity order is semantics, e.g. failover priority — while MAMA
  component/connector lists are sorted first, since a MAMA is a set);
* the *effective* failure-probability map, common-cause events and
  reward weights the point is solved with;
* the scan backend and, for the ``bounded`` backend, its ε (pinned to
  0.0 for exact backends, which ignore it, so exact points share keys
  across differing ε arguments — mirroring the sweep engine's
  scan-cache key);
* the layered solver's tolerances (read from
  :func:`repro.lqn.solver.solve_lqn`'s signature, so a tolerance
  change invalidates stored rewards automatically);
* :data:`CODE_SCHEMA_VERSION` — bump it whenever the *semantics* of
  the analysis change (a bug fix that moves rewards, a new reward
  convention), and every store silently becomes a miss instead of
  serving stale results.

Keys deliberately hash serialized documents, never in-memory objects:
hash-consed expression interning (``booleans/expr.py``) makes object
identities and Python ``hash()`` values process-specific, while the
canonical JSON is identical across processes, interpreter runs and
machines.  ``tests/campaign/test_keys.py`` proves the round trip by
building the same model in separate interpreter processes.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from collections.abc import Mapping, Sequence

from repro.core.dependency import CommonCause
from repro.core.enumeration import normalize_method
from repro.ftlqn.model import FTLQNModel
from repro.ftlqn.serialize import model_to_json
from repro.mama.model import MAMAModel
from repro.mama.serialize import mama_to_json

#: Version of the analysis semantics baked into every key.  Bump on
#: any change that alters stored results (reward conventions, scan
#: semantics, solver algorithm changes beyond tolerance values).
CODE_SCHEMA_VERSION = 1


def canonical_json(value) -> str:
    """Canonical JSON: sorted keys, no whitespace, shortest-repr
    floats.  The same value always renders to the same byte string, on
    any machine — the property every content address rests on."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(document) -> str:
    """SHA-256 hex digest of the canonical JSON of ``document``."""
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")
    ).hexdigest()


def solver_tolerances() -> dict[str, float | int]:
    """The layered solver's convergence knobs, read from
    :func:`repro.lqn.solver.solve_lqn`'s own defaults so the key
    tracks the code instead of a copy that could drift."""
    from repro.lqn.solver import solve_lqn

    signature = inspect.signature(solve_lqn)
    return {
        name: signature.parameters[name].default
        for name in (
            "tolerance", "max_iterations", "mva_tolerance",
            "mva_max_iterations",
        )
    }


def _canonical_mama_document(document: Mapping) -> dict:
    """Order-normalize a MAMA document for hashing.

    A MAMA is a *set* of components and connectors — insertion order
    carries no semantics — but the serializer emits them in build
    order, and a JSON round trip regroups them by kind.  Sorting both
    lists makes "built in code" and "loaded from the file that build
    wrote" key identically.  (FTLQN documents are hashed verbatim:
    there, order *is* semantics — service targets are a failover
    priority list.)"""
    document = dict(document)
    document["components"] = sorted(
        document.get("components", ()), key=canonical_json
    )
    document["connectors"] = sorted(
        document.get("connectors", ()), key=canonical_json
    )
    return document


def _causes_document(causes: Sequence[CommonCause]) -> list[dict]:
    return [
        {
            "name": cause.name,
            "probability": float(cause.probability),
            "components": list(cause.components),
        }
        for cause in causes
    ]


def solve_point_document(
    ftlqn: FTLQNModel | Mapping,
    mama: MAMAModel | Mapping | None,
    *,
    failure_probs: Mapping[str, float],
    common_causes: Sequence[CommonCause] = (),
    weights: Mapping[str, float] | None = None,
    method: str = "factored",
    epsilon: float = 0.0,
) -> dict:
    """The canonical fingerprint document of one solve point.

    ``ftlqn``/``mama`` accept either model objects (serialized here)
    or already-serialized documents (so workers and parents fingerprint
    identically without re-building models).  ``failure_probs`` must be
    the *effective* map the point is solved with — overlay resolution
    happens before keying, so "base + override" and "explicit full
    map" spellings of the same scenario share one key.
    """
    method = normalize_method(method)
    ftlqn_doc = (
        json.loads(model_to_json(ftlqn))
        if isinstance(ftlqn, FTLQNModel) else ftlqn
    )
    if isinstance(mama, MAMAModel):
        mama_doc = _canonical_mama_document(json.loads(mama_to_json(mama)))
    elif mama is not None:
        mama_doc = _canonical_mama_document(mama)
    else:
        mama_doc = None
    return {
        "schema": CODE_SCHEMA_VERSION,
        "kind": "solve",
        "ftlqn": ftlqn_doc,
        "mama": mama_doc,
        "failure_probs": {
            str(name): float(value)
            for name, value in failure_probs.items()
        },
        "common_causes": _causes_document(common_causes),
        "weights": (
            None if weights is None
            else {str(name): float(value) for name, value in weights.items()}
        ),
        "method": method,
        "epsilon": float(epsilon) if method == "bounded" else 0.0,
        "solver": solver_tolerances(),
    }


def solve_point_key(
    ftlqn: FTLQNModel | Mapping,
    mama: MAMAModel | Mapping | None,
    **kwargs,
) -> str:
    """Content address of one solve point (see
    :func:`solve_point_document` for the hashed fields)."""
    return fingerprint(solve_point_document(ftlqn, mama, **kwargs))


def temporal_point_document(
    ftlqn: FTLQNModel | Mapping,
    mama: MAMAModel | Mapping | None,
    *,
    rates: Mapping[str, Sequence[float]],
    times: Sequence[float],
    latencies: Sequence[float] = (),
    common_causes: Sequence[CommonCause] = (),
    cause_repair_rate: float = 1.0,
    weights: Mapping[str, float] | None = None,
    method: str = "factored",
    epsilon: float = 0.0,
) -> dict:
    """The canonical fingerprint document of one temporal point.

    ``rates`` maps component names to ``(failure_rate, repair_rate)``
    pairs — the *effective* rates the transient curve is evaluated
    with, mirroring the effective-probability convention of solve
    points.  ``times`` is the transient grid and ``latencies`` the
    detection latencies of the erosion curve solved alongside it;
    both are part of the key because both decide the stored numbers.
    """
    method = normalize_method(method)
    ftlqn_doc = (
        json.loads(model_to_json(ftlqn))
        if isinstance(ftlqn, FTLQNModel) else ftlqn
    )
    if isinstance(mama, MAMAModel):
        mama_doc = _canonical_mama_document(json.loads(mama_to_json(mama)))
    elif mama is not None:
        mama_doc = _canonical_mama_document(mama)
    else:
        mama_doc = None
    return {
        "schema": CODE_SCHEMA_VERSION,
        "kind": "temporal",
        "ftlqn": ftlqn_doc,
        "mama": mama_doc,
        "rates": {
            str(name): [float(pair[0]), float(pair[1])]
            for name, pair in rates.items()
        },
        "times": [float(value) for value in times],
        "latencies": [float(value) for value in latencies],
        "common_causes": _causes_document(common_causes),
        "cause_repair_rate": float(cause_repair_rate),
        "weights": (
            None if weights is None
            else {str(name): float(value) for name, value in weights.items()}
        ),
        "method": method,
        "epsilon": float(epsilon) if method == "bounded" else 0.0,
        "solver": solver_tolerances(),
    }


def temporal_point_key(
    ftlqn: FTLQNModel | Mapping,
    mama: MAMAModel | Mapping | None,
    **kwargs,
) -> str:
    """Content address of one temporal point (see
    :func:`temporal_point_document` for the hashed fields)."""
    return fingerprint(temporal_point_document(ftlqn, mama, **kwargs))


def fuzz_point_document(
    scenario_document: Mapping,
    *,
    backends: Sequence[str],
    jobs_checked: Sequence[int] = (1,),
    simulate: bool = False,
    temporal: bool = False,
    oracle_config: Mapping | None = None,
) -> dict:
    """The canonical fingerprint document of one differential-oracle
    check: the scenario itself (minus its provenance seed — two seeds
    that generate the same scenario share one check) plus everything
    that decides what the check *proves* (backend set, parallel jobs,
    simulation and temporal cross-checks, oracle tolerances)."""
    scenario = dict(scenario_document)
    scenario.pop("seed", None)
    return {
        "schema": CODE_SCHEMA_VERSION,
        "kind": "fuzz",
        "scenario": scenario,
        "backends": [str(name) for name in backends],
        "jobs_checked": [int(jobs) for jobs in jobs_checked],
        "simulate": bool(simulate),
        "temporal": bool(temporal),
        "oracle": dict(oracle_config or {}),
        "solver": solver_tolerances(),
    }


def fuzz_point_key(scenario_document: Mapping, **kwargs) -> str:
    """Content address of one fuzz check (see
    :func:`fuzz_point_document`)."""
    return fingerprint(fuzz_point_document(scenario_document, **kwargs))
