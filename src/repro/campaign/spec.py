"""Campaign specifications and workload producers.

A campaign spec names one FTLQN model, a set of MAMA architecture
variants, a base scenario, a scan backend — and a list of *workloads*,
each of which expands into concrete scenario points:

* ``grid`` — a sweep grid: the cartesian product of per-component
  failure-probability axes × architecture variants (the paper's §6
  studies at scale);
* ``points`` — explicit sweep points, in the sweep-spec JSON shape
  (:func:`repro.core.sweep.points_from_documents`);
* ``optimize`` — a design-space candidate set
  (:mod:`repro.optimize.space`): every candidate of the space becomes
  one point, carrying its cost metadata into the store;
* ``fuzz`` — a differential-verification seed range
  (:mod:`repro.verify`): every seed becomes one oracle check;
* ``temporal`` — a transient performability curve per architecture
  variant (:class:`~repro.core.temporal.TemporalAnalyzer`): the base
  scenario lifted to failure/repair rates, evaluated over a time grid
  with an optional detection-latency erosion curve.

:meth:`CampaignSpec.compile` resolves all of it into a flat
:class:`CompiledCampaign`: per-point *effective* inputs (base +
overlay already folded), content-addressed keys
(:mod:`repro.campaign.keys`), and the plain-JSON engine documents a
worker process needs to rebuild a warm
:class:`~repro.core.sweep.SweepEngine` — nothing in a compiled
campaign holds a live model object, so it ships across process
boundaries as data.

The file format (see ``examples/campaign/campaign.json``)::

    {
      "name": "multi-region",
      "model": "model.json",
      "architectures": {"central": "central.json", ...},
      "base": {"failure_probs": {...}, "common_causes": [...]},
      "method": "bits",
      "workloads": [
        {"kind": "grid", "architectures": ["central", null],
         "axes": {"db1": [0.01, 0.05]}, "weights": {"users": 1.0}},
        {"kind": "points", "points": [...]},
        {"kind": "optimize", "space": {...}},
        {"kind": "fuzz", "seeds": 20},
        {"kind": "temporal", "architectures": ["central"],
         "horizon": 20, "points": 9, "latencies": [0.5]}
      ]
    }

``model`` and architecture values are file paths resolved relative to
the spec file, exactly like sweep specs.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

from repro.campaign.keys import (
    fuzz_point_key,
    solve_point_key,
    temporal_point_key,
)
from repro.core.bounded import DEFAULT_EPSILON
from repro.core.dependency import CommonCause
from repro.core.enumeration import normalize_method
from repro.core.sweep import (
    SweepPoint,
    causes_from_documents,
    points_from_documents,
    probs_from_document,
)
from repro.errors import SerializationError
from repro.ftlqn.model import FTLQNModel
from repro.ftlqn.serialize import model_from_json, model_to_json
from repro.mama.model import MAMAModel
from repro.mama.serialize import mama_from_json, mama_to_json


# ----------------------------------------------------------------------
# Workloads


@dataclass(frozen=True)
class GridWorkload:
    """Cartesian failure-probability grid × architecture variants."""

    label: str
    architectures: tuple[str | None, ...]
    axes: tuple[tuple[str, tuple[float, ...]], ...]
    weights: Mapping[str, float] | None = None

    def sweep_points(self) -> list[SweepPoint]:
        points = []
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        for architecture in self.architectures:
            for combo in itertools.product(*value_lists):
                overlay = dict(zip(names, combo))
                tag = ",".join(
                    f"{name}={value:g}" for name, value in overlay.items()
                )
                points.append(
                    SweepPoint(
                        name=f"{self.label}/{architecture or 'perfect'}"
                        + (f"/{tag}" if tag else ""),
                        architecture=architecture,
                        failure_probs=overlay or None,
                        weights=self.weights,
                    )
                )
        return points


@dataclass(frozen=True)
class PointsWorkload:
    """Explicit sweep points (the sweep-spec ``points`` shape)."""

    label: str
    points: tuple[SweepPoint, ...]

    def sweep_points(self) -> list[SweepPoint]:
        return [
            SweepPoint(
                name=f"{self.label}/{point.name}",
                architecture=point.architecture,
                failure_probs=point.failure_probs,
                common_causes=point.common_causes,
                weights=point.weights,
            )
            for point in self.points
        ]


@dataclass(frozen=True)
class OptimizeWorkload:
    """Every candidate of a design space becomes one campaign point.

    ``space_document`` is the optimize-spec ``space`` object
    (:func:`repro.optimize.spec.space_from_document`);
    ``architectures`` optionally names campaign-level architecture
    variants to include as explicit candidates.
    """

    label: str
    space_document: Mapping | None
    architectures: tuple[str, ...] = ()
    weights: Mapping[str, float] | None = None


@dataclass(frozen=True)
class FuzzWorkload:
    """A differential-verification seed range.

    Check strength is derived from the *seed*, not the position in the
    range (``seed % sim_every``/``% parallel_every``), so a seed's
    content-addressed key means the same thing whatever range it was
    reached through.
    """

    label: str
    seeds: int
    seed_start: int = 0
    backends: tuple[str, ...] | None = None
    sim_every: int = 10
    parallel_every: int = 25
    temporal_every: int = 10
    jobs: int = 2


@dataclass(frozen=True)
class TemporalWorkload:
    """A transient performability curve per architecture variant.

    The static base scenario is lifted to failure/repair rates with
    :meth:`~repro.markov.availability.ComponentAvailability
    .from_probability` at ``repair_rate`` (so the curve's ``t → ∞``
    limit reproduces the static point exactly); ``rates`` overrides
    individual components with explicit ``(failure_rate, repair_rate)``
    pairs.  ``latencies`` adds the detection-latency erosion curve to
    every point's stored result.
    """

    label: str
    architectures: tuple[str | None, ...]
    times: tuple[float, ...]
    repair_rate: float = 1.0
    cause_repair_rate: float = 1.0
    latencies: tuple[float, ...] = ()
    rates: Mapping[str, tuple[float, float]] | None = None
    weights: Mapping[str, float] | None = None


Workload = (
    GridWorkload | PointsWorkload | OptimizeWorkload | FuzzWorkload
    | TemporalWorkload
)


# ----------------------------------------------------------------------
# Compiled form


@dataclass(frozen=True)
class CompiledPoint:
    """One content-addressed unit of campaign work.

    ``payload`` is everything a worker needs to execute the point
    (plain JSON data); ``extra`` is metadata stored alongside the
    result (candidate cost, workload label) but *not* part of the key.
    """

    key: str
    kind: str  # "solve" | "fuzz" | "temporal"
    name: str
    workload: str
    payload: dict
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CompiledCampaign:
    """A campaign resolved to plain data: content-addressed points
    plus the engine documents workers rebuild their caches from.

    ``duplicate_points`` counts spec points that collapsed onto an
    earlier point's key (identical analysis content under a different
    name); they are solved and stored once.
    """

    name: str
    engine_documents: dict
    points: tuple[CompiledPoint, ...]
    method: str
    epsilon: float
    duplicate_points: int = 0

    @property
    def solve_points(self) -> tuple[CompiledPoint, ...]:
        return tuple(p for p in self.points if p.kind == "solve")

    @property
    def fuzz_points(self) -> tuple[CompiledPoint, ...]:
        return tuple(p for p in self.points if p.kind == "fuzz")

    @property
    def temporal_points(self) -> tuple[CompiledPoint, ...]:
        return tuple(p for p in self.points if p.kind == "temporal")


# ----------------------------------------------------------------------
# The spec itself


@dataclass
class CampaignSpec:
    """One campaign: models, base scenario, backend, workloads."""

    name: str
    ftlqn: FTLQNModel
    workloads: Sequence[Workload]
    architectures: Mapping[str, MAMAModel] = field(default_factory=dict)
    base_failure_probs: Mapping[str, float] = field(default_factory=dict)
    base_common_causes: tuple[CommonCause, ...] = ()
    method: str = "factored"
    epsilon: float = DEFAULT_EPSILON

    def compile(
        self,
        *,
        method: str | None = None,
        epsilon: float | None = None,
    ) -> CompiledCampaign:
        """Expand every workload, fold base + overlays into effective
        inputs, and key every point (``method``/``epsilon`` override
        the spec's backend, e.g. from the CLI)."""
        method = normalize_method(method or self.method)
        epsilon = self.epsilon if epsilon is None else float(epsilon)

        architectures = dict(self.architectures)
        ftlqn_document = json.loads(model_to_json(self.ftlqn))
        points: list[CompiledPoint] = []

        for index, workload in enumerate(self.workloads):
            if isinstance(workload, (GridWorkload, PointsWorkload)):
                for point in workload.sweep_points():
                    points.append(
                        self._compile_solve_point(
                            point, architectures, ftlqn_document,
                            method, epsilon, workload.label,
                        )
                    )
            elif isinstance(workload, OptimizeWorkload):
                points.extend(
                    self._compile_optimize(
                        workload, architectures, ftlqn_document,
                        method, epsilon,
                    )
                )
            elif isinstance(workload, TemporalWorkload):
                points.extend(
                    self._compile_temporal(
                        workload, architectures, ftlqn_document,
                        method, epsilon,
                    )
                )
            elif isinstance(workload, FuzzWorkload):
                points.extend(self._compile_fuzz(workload))
            else:  # pragma: no cover - guarded by the parser
                raise SerializationError(
                    f"workload {index} has unknown type {type(workload)!r}"
                )

        names = [point.name for point in points]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise SerializationError(
                f"campaign point names must be unique; duplicated: "
                f"{duplicates[:5]}"
            )
        unique: list[CompiledPoint] = []
        seen: set[str] = set()
        for point in points:
            if point.key in seen:
                continue
            seen.add(point.key)
            unique.append(point)

        return CompiledCampaign(
            name=self.name,
            engine_documents={
                "ftlqn": ftlqn_document,
                "architectures": {
                    key: json.loads(mama_to_json(mama))
                    for key, mama in architectures.items()
                },
            },
            points=tuple(unique),
            method=method,
            epsilon=epsilon,
            duplicate_points=len(points) - len(unique),
        )

    # -- helpers --------------------------------------------------------

    def _effective_probs(
        self,
        point: SweepPoint,
        architectures: Mapping[str, MAMAModel],
    ) -> dict[str, float]:
        """Base + overlay, restricted to the point's component
        universe — the same overlay semantics as
        :meth:`repro.core.sweep.SweepEngine.effective_failure_probs`,
        computed from the models alone (no structure derivation)."""
        universe = set(self.ftlqn.component_names())
        if point.architecture is not None:
            try:
                mama = architectures[point.architecture]
            except KeyError:
                raise SerializationError(
                    f"point {point.name!r} references unknown architecture "
                    f"{point.architecture!r}; available: "
                    f"{sorted(architectures)}"
                ) from None
            universe |= set(mama.components) | set(mama.connectors)
        effective = {
            name: probability
            for name, probability in self.base_failure_probs.items()
            if name in universe
        }
        effective.update(point.failure_probs or {})
        return effective

    def _compile_solve_point(
        self,
        point: SweepPoint,
        architectures: Mapping[str, MAMAModel],
        ftlqn_document: dict,
        method: str,
        epsilon: float,
        workload: str,
        extra: dict | None = None,
    ) -> CompiledPoint:
        effective = self._effective_probs(point, architectures)
        causes = (
            point.common_causes
            if point.common_causes is not None
            else self.base_common_causes
        )
        mama = (
            None if point.architecture is None
            else architectures[point.architecture]
        )
        key = solve_point_key(
            ftlqn_document,
            mama,
            failure_probs=effective,
            common_causes=causes,
            weights=point.weights,
            method=method,
            epsilon=epsilon,
        )
        payload = {
            "name": point.name,
            "architecture": point.architecture,
            "failure_probs": effective,
            "common_causes": [
                {
                    "name": cause.name,
                    "probability": cause.probability,
                    "components": list(cause.components),
                }
                for cause in causes
            ],
            "weights": None if point.weights is None else dict(point.weights),
            "method": method,
            "epsilon": epsilon,
        }
        return CompiledPoint(
            key=key, kind="solve", name=point.name, workload=workload,
            payload=payload, extra=dict(extra or {}),
        )

    def _compile_optimize(
        self,
        workload: OptimizeWorkload,
        architectures: dict[str, MAMAModel],
        ftlqn_document: dict,
        method: str,
        epsilon: float,
    ) -> list[CompiledPoint]:
        # Lazy import: repro.optimize pulls in the search machinery,
        # which campaign specs only need for this workload kind.
        from repro.optimize.spec import space_from_document

        explicit = None
        if workload.architectures:
            missing = [
                name for name in workload.architectures
                if name not in architectures
            ]
            if missing:
                raise SerializationError(
                    f"optimize workload {workload.label!r} references "
                    f"unknown campaign architectures {missing}"
                )
            explicit = {
                name: architectures[name] for name in workload.architectures
            }
        space = space_from_document(
            workload.space_document,
            self.ftlqn,
            explicit=explicit,
            base_failure_probs=dict(self.base_failure_probs),
            common_causes=self.base_common_causes,
        )
        # Register the space's generated architectures under a
        # workload-namespaced key so they cannot collide with (or
        # shadow) campaign-level variants.
        namespace = {}
        for key, mama in space.architectures().items():
            namespaced = f"{workload.label}:{key}"
            if namespaced in architectures:
                raise SerializationError(
                    f"architecture key {namespaced!r} is already taken; "
                    f"rename the optimize workload {workload.label!r}"
                )
            architectures[namespaced] = mama
            namespace[key] = namespaced

        points = []
        for candidate in space.candidates():
            point = SweepPoint(
                name=f"{workload.label}/{candidate.name}",
                architecture=namespace[candidate.architecture],
                failure_probs=candidate.failure_probs,
                weights=workload.weights,
            )
            points.append(
                self._compile_solve_point(
                    point, architectures, ftlqn_document, method, epsilon,
                    workload.label,
                    extra={
                        "candidate": {
                            "name": candidate.name,
                            "architecture": candidate.architecture,
                            "topology": candidate.topology,
                            "style": candidate.style,
                            "upgrades": [
                                upgrade.name for upgrade in candidate.upgrades
                            ],
                            "cost": candidate.cost,
                            "component_count": candidate.component_count,
                        }
                    },
                )
            )
        return points

    def _compile_temporal(
        self,
        workload: TemporalWorkload,
        architectures: Mapping[str, MAMAModel],
        ftlqn_document: dict,
        method: str,
        epsilon: float,
    ) -> list[CompiledPoint]:
        # Lazy: the markov layer is only needed for this workload kind.
        from repro.markov.availability import ComponentAvailability

        points = []
        for architecture in workload.architectures:
            probe = SweepPoint(
                name=f"{workload.label}/{architecture or 'perfect'}",
                architecture=architecture,
            )
            effective = self._effective_probs(probe, architectures)
            rates: dict[str, tuple[float, float]] = {}
            for name, probability in effective.items():
                lifted = ComponentAvailability.from_probability(
                    probability, repair_rate=workload.repair_rate
                )
                rates[name] = (lifted.failure_rate, lifted.repair_rate)
            for name, pair in (workload.rates or {}).items():
                rates[name] = (float(pair[0]), float(pair[1]))
            mama = (
                None if architecture is None else architectures[architecture]
            )
            key = temporal_point_key(
                ftlqn_document,
                mama,
                rates=rates,
                times=workload.times,
                latencies=workload.latencies,
                common_causes=self.base_common_causes,
                cause_repair_rate=workload.cause_repair_rate,
                weights=workload.weights,
                method=method,
                epsilon=epsilon,
            )
            payload = {
                "name": probe.name,
                "architecture": architecture,
                "rates": {
                    name: [pair[0], pair[1]]
                    for name, pair in rates.items()
                },
                "times": list(workload.times),
                "latencies": list(workload.latencies),
                "common_causes": [
                    {
                        "name": cause.name,
                        "probability": cause.probability,
                        "components": list(cause.components),
                    }
                    for cause in self.base_common_causes
                ],
                "cause_repair_rate": workload.cause_repair_rate,
                "weights": (
                    None if workload.weights is None
                    else dict(workload.weights)
                ),
                "method": method,
                "epsilon": epsilon,
            }
            points.append(
                CompiledPoint(
                    key=key, kind="temporal", name=probe.name,
                    workload=workload.label, payload=payload,
                )
            )
        return points

    def _compile_fuzz(self, workload: FuzzWorkload) -> list[CompiledPoint]:
        # Lazy: the verify package imports simulation machinery.
        from dataclasses import asdict

        from repro.verify.generator import DEFAULT_SPACE, generate_scenario
        from repro.verify.oracle import DEFAULT_ORACLE_CONFIG, default_backends

        backends = tuple(default_backends(workload.backends))
        oracle_document = asdict(DEFAULT_ORACLE_CONFIG)
        points = []
        for offset in range(workload.seeds):
            seed = workload.seed_start + offset
            scenario = generate_scenario(seed, DEFAULT_SPACE)
            document = scenario.to_document()
            simulate = (
                workload.sim_every > 0 and seed % workload.sim_every == 0
            )
            temporal = (
                workload.temporal_every > 0
                and seed % workload.temporal_every == 0
            )
            jobs_checked = (1,)
            if (
                workload.parallel_every > 0
                and workload.jobs > 1
                and seed % workload.parallel_every == 0
            ):
                jobs_checked = (1, workload.jobs)
            key = fuzz_point_key(
                document,
                backends=backends,
                jobs_checked=jobs_checked,
                simulate=simulate,
                temporal=temporal,
                oracle_config=oracle_document,
            )
            points.append(
                CompiledPoint(
                    key=key,
                    kind="fuzz",
                    name=f"{workload.label}/seed-{seed}",
                    workload=workload.label,
                    payload={
                        "seed": seed,
                        "scenario": document,
                        "backends": list(backends),
                        "jobs_checked": list(jobs_checked),
                        "simulate": simulate,
                        "temporal": temporal,
                    },
                )
            )
        return points


# ----------------------------------------------------------------------
# JSON spec parsing

_SPEC_KEYS = frozenset(
    {"name", "model", "architectures", "base", "method", "epsilon",
     "workloads"}
)
_GRID_KEYS = frozenset(
    {"kind", "label", "architectures", "axes", "weights"}
)
_POINTS_KEYS = frozenset({"kind", "label", "points"})
_OPTIMIZE_KEYS = frozenset(
    {"kind", "label", "space", "architectures", "weights"}
)
_FUZZ_KEYS = frozenset(
    {"kind", "label", "seeds", "seed_start", "backends", "sim_every",
     "parallel_every", "temporal_every", "jobs"}
)
_TEMPORAL_KEYS = frozenset(
    {"kind", "label", "architectures", "times", "horizon", "points",
     "repair_rate", "cause_repair_rate", "latencies", "rates", "weights"}
)


def _check_keys(item: Mapping, allowed: frozenset, what: str) -> None:
    unknown = sorted(set(item) - allowed)
    if unknown:
        raise SerializationError(
            f"{what} has unknown keys {unknown}; allowed: {sorted(allowed)}"
        )


def _workload_from_document(item, index: int) -> Workload:
    if not isinstance(item, Mapping):
        raise SerializationError(
            f"workload {index} must be an object, got {item!r}"
        )
    kind = item.get("kind")
    label = str(item.get("label", f"{kind}{index}"))
    what = f"workload {index} ({label})"
    if kind == "grid":
        _check_keys(item, _GRID_KEYS, what)
        architectures_doc = item.get("architectures", [None])
        if not isinstance(architectures_doc, list) or not architectures_doc:
            raise SerializationError(
                f'{what}: "architectures" must be a non-empty array of '
                "architecture names (null = perfect knowledge)"
            )
        axes_doc = item.get("axes", {})
        if not isinstance(axes_doc, Mapping):
            raise SerializationError(
                f'{what}: "axes" must map component names to value arrays'
            )
        axes = []
        for component, values in axes_doc.items():
            if not isinstance(values, list) or not values:
                raise SerializationError(
                    f"{what}: axis {component!r} must be a non-empty array "
                    "of probabilities"
                )
            try:
                axes.append(
                    (str(component), tuple(float(v) for v in values))
                )
            except (TypeError, ValueError) as exc:
                raise SerializationError(
                    f"{what}: axis {component!r}: {exc}"
                ) from exc
        weights = None
        if "weights" in item:
            weights = probs_from_document(
                item["weights"], label=f"{what} weights"
            )
        return GridWorkload(
            label=label,
            architectures=tuple(
                None if entry is None else str(entry)
                for entry in architectures_doc
            ),
            axes=tuple(axes),
            weights=weights,
        )
    if kind == "points":
        _check_keys(item, _POINTS_KEYS, what)
        return PointsWorkload(
            label=label,
            points=tuple(points_from_documents(item.get("points"))),
        )
    if kind == "optimize":
        _check_keys(item, _OPTIMIZE_KEYS, what)
        architectures = item.get("architectures", [])
        if not isinstance(architectures, list):
            raise SerializationError(
                f'{what}: "architectures" must be an array of campaign '
                "architecture names"
            )
        weights = None
        if "weights" in item:
            weights = probs_from_document(
                item["weights"], label=f"{what} weights"
            )
        return OptimizeWorkload(
            label=label,
            space_document=item.get("space"),
            architectures=tuple(str(name) for name in architectures),
            weights=weights,
        )
    if kind == "fuzz":
        _check_keys(item, _FUZZ_KEYS, what)
        try:
            return FuzzWorkload(
                label=label,
                seeds=int(item.get("seeds", 100)),
                seed_start=int(item.get("seed_start", 0)),
                backends=(
                    tuple(str(b) for b in item["backends"])
                    if "backends" in item else None
                ),
                sim_every=int(item.get("sim_every", 10)),
                parallel_every=int(item.get("parallel_every", 25)),
                temporal_every=int(item.get("temporal_every", 10)),
                jobs=int(item.get("jobs", 2)),
            )
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"{what}: {exc}") from exc
    if kind == "temporal":
        _check_keys(item, _TEMPORAL_KEYS, what)
        architectures_doc = item.get("architectures", [None])
        if not isinstance(architectures_doc, list) or not architectures_doc:
            raise SerializationError(
                f'{what}: "architectures" must be a non-empty array of '
                "architecture names (null = perfect knowledge)"
            )
        if "times" in item and "horizon" in item:
            raise SerializationError(
                f'{what}: give either an explicit "times" array or a '
                '"horizon" (+ "points"), not both'
            )
        try:
            if "times" in item:
                times = tuple(float(t) for t in item["times"])
            else:
                from repro.core.temporal import time_grid

                times = time_grid(
                    float(item.get("horizon", 10.0)),
                    int(item.get("points", 9)),
                )
            latencies = tuple(
                float(value) for value in item.get("latencies", [])
            )
            repair_rate = float(item.get("repair_rate", 1.0))
            cause_repair_rate = float(item.get("cause_repair_rate", 1.0))
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"{what}: {exc}") from exc
        rates = None
        if "rates" in item:
            rates_doc = item["rates"]
            if not isinstance(rates_doc, Mapping):
                raise SerializationError(
                    f'{what}: "rates" must map component names to '
                    "[failure_rate, repair_rate] pairs"
                )
            rates = {}
            for name, pair in rates_doc.items():
                if not isinstance(pair, Sequence) or len(pair) != 2:
                    raise SerializationError(
                        f"{what}: rate for {name!r} must be a "
                        "[failure_rate, repair_rate] pair"
                    )
                try:
                    rates[str(name)] = (float(pair[0]), float(pair[1]))
                except (TypeError, ValueError) as exc:
                    raise SerializationError(
                        f"{what}: rate for {name!r}: {exc}"
                    ) from exc
        weights = None
        if "weights" in item:
            weights = probs_from_document(
                item["weights"], label=f"{what} weights"
            )
        return TemporalWorkload(
            label=label,
            architectures=tuple(
                None if entry is None else str(entry)
                for entry in architectures_doc
            ),
            times=times,
            repair_rate=repair_rate,
            cause_repair_rate=cause_repair_rate,
            latencies=latencies,
            rates=rates,
            weights=weights,
        )
    raise SerializationError(
        f"{what}: unknown workload kind {kind!r}; expected one of "
        "['grid', 'points', 'optimize', 'fuzz', 'temporal']"
    )


def campaign_spec_from_document(
    document, *, base_dir: str | Path = "."
) -> CampaignSpec:
    """Parse a campaign-spec JSON document (file paths resolved
    relative to ``base_dir``)."""
    if not isinstance(document, Mapping):
        raise SerializationError("campaign spec must be a JSON object")
    _check_keys(document, _SPEC_KEYS, "campaign spec")
    if "model" not in document:
        raise SerializationError(
            'campaign spec needs a "model" entry (FTLQN JSON file path)'
        )
    workloads_doc = document.get("workloads")
    if not isinstance(workloads_doc, list) or not workloads_doc:
        raise SerializationError(
            'campaign spec needs a non-empty "workloads" array'
        )
    base_dir = Path(base_dir)

    def read(entry: object, what: str) -> str:
        if not isinstance(entry, str):
            raise SerializationError(
                f"{what} must be a file-path string, got {entry!r}"
            )
        candidate = Path(entry)
        path = candidate if candidate.is_absolute() else base_dir / candidate
        try:
            return path.read_text()
        except OSError as exc:
            raise SerializationError(f"cannot read {path}: {exc}") from exc

    ftlqn = model_from_json(read(document["model"], '"model"'))
    architectures_doc = document.get("architectures", {})
    if not isinstance(architectures_doc, Mapping):
        raise SerializationError(
            '"architectures" must map names to MAMA JSON file paths'
        )
    architectures = {
        str(name): mama_from_json(read(entry, f"architecture {name!r}"))
        for name, entry in architectures_doc.items()
    }
    base = document.get("base", {})
    if not isinstance(base, Mapping):
        raise SerializationError('"base" must be a JSON object')
    _check_keys(base, frozenset({"failure_probs", "common_causes"}), '"base"')
    try:
        epsilon = float(document.get("epsilon", DEFAULT_EPSILON))
    except (TypeError, ValueError) as exc:
        raise SerializationError(f'"epsilon": {exc}') from exc
    return CampaignSpec(
        name=str(document.get("name", "campaign")),
        ftlqn=ftlqn,
        architectures=architectures,
        base_failure_probs=probs_from_document(
            base.get("failure_probs", {}), label='"base" failure_probs'
        ),
        base_common_causes=causes_from_documents(
            base.get("common_causes", [])
        ),
        method=normalize_method(str(document.get("method", "factored"))),
        epsilon=epsilon,
        workloads=[
            _workload_from_document(item, index)
            for index, item in enumerate(workloads_doc)
        ],
    )


def load_campaign_spec(path: str | Path) -> CampaignSpec:
    """Load and parse a campaign spec file (paths resolved relative to
    the spec file's directory)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"campaign spec {path} is not valid JSON: {exc}"
        ) from exc
    return campaign_spec_from_document(document, base_dir=path.parent)
