"""The persistent, content-addressed result store.

One sqlite file (WAL mode) holds every point a campaign ever solved,
keyed by the point's content address (:mod:`repro.campaign.keys`).
Rows are immutable facts — "this exact analysis input produced this
result" — so the store doubles as a cross-run memo: re-running a
campaign with overlapping points only solves the delta, and a
dispatcher killed mid-campaign resumes from whatever it had committed.

Durability model
----------------
Each :meth:`ResultStore.put` commits its own transaction.  With WAL
journaling a commit is one fsync-bounded append; after a SIGKILL the
next open replays the WAL and every committed point is present.  The
dispatcher therefore commits per point — the write rate (tens per
second) is far below WAL's capacity, and the property the campaign
runner sells ("kill -9, rerun, zero recomputation") falls directly out
of it.

Concurrency: the default dispatcher funnels all writes through the
parent process, but the store also holds up under multiple writer
processes (``busy_timeout`` + WAL), which is how several campaign
runners on one host can share a store.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import SerializationError

#: On-disk format version of the store itself (tables/columns), not of
#: the analysis semantics — that lives inside every key as
#: :data:`repro.campaign.keys.CODE_SCHEMA_VERSION`.
STORE_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    key      TEXT PRIMARY KEY,
    kind     TEXT NOT NULL,
    name     TEXT NOT NULL,
    campaign TEXT,
    document TEXT NOT NULL,
    seconds  REAL NOT NULL,
    created  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS points_kind ON points (kind);
CREATE INDEX IF NOT EXISTS points_campaign ON points (campaign);
"""


@dataclass(frozen=True)
class StoredResult:
    """One stored point: its content address, what kind of work it was
    (``"solve"`` or ``"fuzz"``), the human-facing point name, the
    owning campaign label, the result document, and the wall seconds
    the original solve took."""

    key: str
    kind: str
    name: str
    campaign: str | None
    document: dict
    seconds: float
    created: float


class ResultStore:
    """Content-addressed sqlite result store (context manager).

    ``path`` may be ``":memory:"`` for tests.  Opening creates the
    schema if needed and validates :data:`STORE_FORMAT_VERSION` —
    refusing to read a store written by an incompatible layout is a
    one-line error instead of silent corruption.
    """

    def __init__(self, path: str):
        self.path = str(path)
        try:
            self._connection = sqlite3.connect(self.path, timeout=30.0)
            self._connection.execute("SELECT 1")
        except sqlite3.Error as exc:
            raise SerializationError(
                f"cannot open result store {self.path}: {exc}"
            ) from exc
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute("PRAGMA busy_timeout=30000")
        self._connection.executescript(_SCHEMA)
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'format_version'"
        ).fetchone()
        if row is None:
            self._connection.execute(
                "INSERT INTO meta (key, value) VALUES ('format_version', ?)",
                (str(STORE_FORMAT_VERSION),),
            )
            self._connection.commit()
        elif int(row[0]) != STORE_FORMAT_VERSION:
            self._connection.close()
            raise SerializationError(
                f"result store {self.path} has format version {row[0]}, "
                f"this build reads {STORE_FORMAT_VERSION}"
            )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes ---------------------------------------------------------

    def put(
        self,
        key: str,
        *,
        kind: str,
        name: str,
        document: dict,
        seconds: float,
        campaign: str | None = None,
    ) -> None:
        """Commit one finished point.  Idempotent: re-putting a key
        (e.g. two racing runners solving the same point) replaces the
        row with an equivalent one."""
        self._connection.execute(
            "INSERT OR REPLACE INTO points "
            "(key, kind, name, campaign, document, seconds, created) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                key, kind, name, campaign,
                json.dumps(document, separators=(",", ":")),
                float(seconds), time.time(),
            ),
        )
        self._connection.commit()

    # -- reads ----------------------------------------------------------

    def get(self, key: str) -> StoredResult | None:
        """The stored point under ``key``, or ``None``."""
        row = self._connection.execute(
            "SELECT key, kind, name, campaign, document, seconds, created "
            "FROM points WHERE key = ?",
            (key,),
        ).fetchone()
        return None if row is None else self._row(row)

    def known(self, keys: Iterable[str]) -> set[str]:
        """The subset of ``keys`` already present — the memo query the
        dispatcher runs before sharding pending work."""
        keys = list(keys)
        present: set[str] = set()
        chunk = 500  # stay far below SQLITE_MAX_VARIABLE_NUMBER
        for start in range(0, len(keys), chunk):
            batch = keys[start:start + chunk]
            placeholders = ",".join("?" * len(batch))
            present.update(
                row[0]
                for row in self._connection.execute(
                    f"SELECT key FROM points WHERE key IN ({placeholders})",
                    batch,
                )
            )
        return present

    def count(self, *, kind: str | None = None) -> int:
        if kind is None:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM points"
            ).fetchone()
        else:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM points WHERE kind = ?", (kind,)
            ).fetchone()
        return int(row[0])

    def rows(
        self,
        *,
        kind: str | None = None,
        campaign: str | None = None,
    ) -> Iterator[StoredResult]:
        """All stored points, optionally filtered, in insertion order
        (rowid) so reports are stable across reads."""
        query = (
            "SELECT key, kind, name, campaign, document, seconds, created "
            "FROM points"
        )
        clauses, args = [], []
        if kind is not None:
            clauses.append("kind = ?")
            args.append(kind)
        if campaign is not None:
            clauses.append("campaign = ?")
            args.append(campaign)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY rowid"
        for row in self._connection.execute(query, args):
            yield self._row(row)

    def journal_mode(self) -> str:
        """The live journal mode (``"wal"`` on disk, ``"memory"`` for
        in-memory stores) — exposed for tests and diagnostics."""
        return str(
            self._connection.execute("PRAGMA journal_mode").fetchone()[0]
        )

    @staticmethod
    def _row(row) -> StoredResult:
        key, kind, name, campaign, document, seconds, created = row
        return StoredResult(
            key=key,
            kind=kind,
            name=name,
            campaign=campaign,
            document=json.loads(document),
            seconds=float(seconds),
            created=float(created),
        )
