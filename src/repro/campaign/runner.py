"""The multi-process campaign dispatcher.

:func:`run_campaign` takes a compiled campaign and a
:class:`~repro.campaign.store.ResultStore` and drives it to
completion:

1. **Memo query** — one :meth:`~repro.campaign.store.ResultStore.known`
   call partitions the points into store hits (done forever, zero
   work) and pending;
2. **Dispatch** — pending points are sharded over ``workers``
   processes, each hosting a warm :class:`~repro.core.sweep.SweepEngine`
   rebuilt from the campaign's plain-JSON engine documents (workers
   receive *data*, never live model objects, so the pool works under
   both fork and spawn start methods);
3. **Streaming commit** — results stream back incrementally; the
   parent commits each one to the store the moment it arrives and
   emits a :class:`CampaignProgress` event with a measured ETA.

Because every finished point is committed before the next one is
awaited, the dispatcher is crash-resumable by construction: SIGKILL it
anywhere, rerun the same spec against the same store, and the second
run completes from the store with zero recomputation — the property
``tests/campaign/test_runner.py`` proves by actually killing it.

Workers solve with ``jobs=1``: campaign parallelism is across points,
which scales embarrassingly, instead of within one point's scan.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.campaign.spec import CampaignSpec, CompiledCampaign, CompiledPoint
from repro.campaign.store import ResultStore
from repro.core.dependency import CommonCause
from repro.core.progress import ScanCounters
from repro.core.sweep import SweepPoint

#: Per-worker state, initialised once per process by
#: :func:`_worker_init` and grown lazily: the engine documents arrive
#: eagerly (cheap JSON), the deserialized models and the warm
#: :class:`~repro.core.sweep.SweepEngine` are built on first use.
_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class CampaignProgress:
    """One dispatcher progress notification (parent process only).

    ``completed`` counts points finished *this run* (store hits count
    immediately); ``eta_seconds`` is measured from the solve rate so
    far, ``None`` until at least one fresh point has finished.
    """

    campaign: str
    completed: int
    total: int
    hits: int
    solved: int
    failed: int
    elapsed: float
    eta_seconds: float | None

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


CampaignProgressCallback = Callable[[CampaignProgress], None]


def console_campaign_progress(stream=None) -> CampaignProgressCallback:
    """A callback rendering one carriage-returned status line
    (``done/total, hits, solved, ETA``) on ``stream`` (default:
    ``sys.stderr``)."""
    import sys

    out = stream if stream is not None else sys.stderr

    def callback(event: CampaignProgress) -> None:
        eta = (
            "--" if event.eta_seconds is None
            else f"{event.eta_seconds:.0f}s"
        )
        out.write(
            f"\r[{event.campaign}] {event.completed}/{event.total} points "
            f"({100.0 * event.fraction:5.1f}%) "
            f"hits={event.hits} solved={event.solved} "
            f"failed={event.failed} eta={eta}"
        )
        if event.completed >= event.total:
            out.write("\n")
        out.flush()

    return callback


@dataclass(frozen=True)
class CampaignResult:
    """The outcome of one :func:`run_campaign` call.

    ``store_hits``/``solved`` partition the campaign's points into
    memoized and freshly computed; ``failed_checks`` names the fuzz
    points whose oracle check found a disagreement (whether this run
    found it or the store remembered it).  ``counters`` aggregates the
    scan counters of the *fresh* solves only — a fully memoized rerun
    reports all-zero counters, which is exactly the claim it makes.
    ``keys`` maps every point name to its content address, for
    store lookups after the run.
    """

    campaign: str
    total: int
    store_hits: int
    solved: int
    failed_checks: tuple[str, ...]
    duplicate_points: int
    seconds: float
    counters: ScanCounters
    keys: Mapping[str, str] = field(default_factory=dict)
    store_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failed_checks

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "total": self.total,
            "store_hits": self.store_hits,
            "solved": self.solved,
            "failed_checks": list(self.failed_checks),
            "duplicate_points": self.duplicate_points,
            "seconds": self.seconds,
            "counters": self.counters.to_dict(),
            "store_path": self.store_path,
        }


# ----------------------------------------------------------------------
# Point execution (runs inside workers — module-level for picklability)


def _worker_init(engine_documents: dict) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE["documents"] = engine_documents


def _worker_engine():
    engine = _WORKER_STATE.get("engine")
    if engine is None:
        import json

        from repro.core.sweep import SweepEngine
        from repro.ftlqn.serialize import model_from_json
        from repro.mama.serialize import mama_from_json

        documents = _WORKER_STATE["documents"]
        ftlqn = model_from_json(json.dumps(documents["ftlqn"]))
        architectures = {
            name: mama_from_json(json.dumps(doc))
            for name, doc in documents["architectures"].items()
        }
        # No base failure probs: compiled payloads carry the already
        # effective map, so base + overlay resolution happened exactly
        # once, in the parent, at compile time.
        engine = SweepEngine(ftlqn, architectures)
        _WORKER_STATE["engine"] = engine
        _WORKER_STATE["ftlqn"] = ftlqn
    return engine


def _execute_solve(payload: Mapping) -> dict:
    engine = _worker_engine()
    point = SweepPoint(
        name=payload["name"],
        architecture=payload["architecture"],
        failure_probs=payload["failure_probs"],
        common_causes=tuple(
            CommonCause(
                name=cause["name"],
                probability=cause["probability"],
                components=tuple(cause["components"]),
            )
            for cause in payload["common_causes"]
        ),
        weights=payload["weights"],
    )
    counters = ScanCounters()
    sweep = engine.run(
        [point],
        method=payload["method"],
        jobs=1,
        epsilon=payload["epsilon"],
        counters=counters,
    )
    return {
        "kind": "solve",
        "record": sweep.points[0].to_dict(),
        "counters": counters.to_dict(),
    }


def _execute_temporal(payload: Mapping) -> dict:
    from repro.core.temporal import TemporalAnalyzer
    from repro.markov.availability import ComponentAvailability

    engine = _worker_engine()
    analyzer = TemporalAnalyzer(
        _WORKER_STATE["ftlqn"],
        rates={
            name: ComponentAvailability(
                failure_rate=pair[0], repair_rate=pair[1]
            )
            for name, pair in payload["rates"].items()
        },
        common_causes=tuple(
            CommonCause(
                name=cause["name"],
                probability=cause["probability"],
                components=tuple(cause["components"]),
            )
            for cause in payload["common_causes"]
        ),
        cause_repair_rate=payload["cause_repair_rate"],
        weights=payload["weights"],
        engine=engine,
    )
    counters = ScanCounters()
    curve = analyzer.evaluate(
        payload["times"],
        architecture=payload["architecture"],
        method=payload["method"],
        jobs=1,
        epsilon=payload["epsilon"],
        counters=counters,
    )
    erosion = ()
    if payload["latencies"]:
        erosion = analyzer.erosion_curve(
            payload["latencies"],
            method=payload["method"],
            jobs=1,
            epsilon=payload["epsilon"],
            counters=counters,
        )
    return {
        "kind": "temporal",
        "result": curve.to_json_dict(),
        "erosion": [point.to_dict() for point in erosion],
        "counters": counters.to_dict(),
    }


def _execute_fuzz(payload: Mapping) -> dict:
    from repro.verify.generator import Scenario
    from repro.verify.oracle import check_scenario, default_backends

    scenario = Scenario.from_document(payload["scenario"])
    report = check_scenario(
        scenario,
        backends=default_backends(payload["backends"]),
        jobs=tuple(payload["jobs_checked"]),
        simulate=payload["simulate"],
        temporal=payload.get("temporal", False),
    )
    return {
        "kind": "fuzz",
        "seed": payload["seed"],
        "ok": report.ok,
        "reference_backend": report.reference_backend,
        "backends_checked": list(report.backends_checked),
        "jobs_checked": list(report.jobs_checked),
        "simulated": report.simulated,
        "temporal_checked": report.temporal_checked,
        "bounded_checked": report.bounded_checked,
        "state_count": report.state_count,
        "distinct_configurations": report.distinct_configurations,
        "expected_reward": report.expected_reward,
        "failed_probability": report.failed_probability,
        "disagreements": [d.as_dict() for d in report.disagreements],
    }


def _execute_point(kind: str, name: str, workload: str, payload: dict):
    """Worker entry: execute one point, return (document, seconds)."""
    start = time.perf_counter()
    if kind == "solve":
        document = _execute_solve(payload)
    elif kind == "temporal":
        document = _execute_temporal(payload)
    elif kind == "fuzz":
        document = _execute_fuzz(payload)
    else:  # pragma: no cover - compile() only emits known kinds
        raise ValueError(f"unknown point kind {kind!r}")
    document["workload"] = workload
    return document, time.perf_counter() - start


# ----------------------------------------------------------------------
# The dispatcher


def _fold_result(
    point: CompiledPoint,
    document: Mapping,
    counters: ScanCounters,
    failed: list[str],
) -> None:
    if point.kind in ("solve", "temporal"):
        counters.merge(ScanCounters.from_dict(document["counters"]))
    elif point.kind == "fuzz" and not document.get("ok", True):
        failed.append(point.name)


def run_campaign(
    campaign: CampaignSpec | CompiledCampaign,
    store: ResultStore,
    *,
    workers: int = 1,
    method: str | None = None,
    epsilon: float | None = None,
    progress: CampaignProgressCallback | None = None,
) -> CampaignResult:
    """Drive a campaign to completion against a result store.

    ``campaign`` may be a :class:`~repro.campaign.spec.CampaignSpec`
    (compiled here, with ``method``/``epsilon`` as backend overrides)
    or an already compiled campaign (``method``/``epsilon`` must then
    be ``None`` — a compiled campaign's keys already fix its backend).
    ``workers=1`` executes inline in this process; ``workers<=0``
    means one worker per CPU.
    """
    if isinstance(campaign, CampaignSpec):
        compiled = campaign.compile(method=method, epsilon=epsilon)
    else:
        if method is not None or epsilon is not None:
            raise ValueError(
                "method/epsilon overrides apply at compile time; pass the "
                "CampaignSpec instead of a CompiledCampaign"
            )
        compiled = campaign
    if workers <= 0:
        workers = os.cpu_count() or 1

    start = time.perf_counter()
    known = store.known(point.key for point in compiled.points)
    pending = [p for p in compiled.points if p.key not in known]
    hits = len(compiled.points) - len(pending)

    counters = ScanCounters()
    failed: list[str] = []
    # A hit's verdict still counts: a fuzz failure remembered by the
    # store must fail the rerun too, not vanish into the memo.
    for point in compiled.points:
        if point.key in known and point.kind == "fuzz":
            stored = store.get(point.key)
            if stored is not None and not stored.document.get("ok", True):
                failed.append(point.name)

    completed = hits
    solved = 0
    solve_seconds = 0.0

    def emit(force: bool = False) -> None:
        if progress is None:
            return
        elapsed = time.perf_counter() - start
        eta = None
        if solved and completed < len(compiled.points):
            eta = (
                (len(compiled.points) - completed)
                * (solve_seconds / solved)
                / max(1, min(workers, len(pending)))
            )
        progress(
            CampaignProgress(
                campaign=compiled.name,
                completed=completed,
                total=len(compiled.points),
                hits=hits,
                solved=solved,
                failed=len(failed),
                elapsed=elapsed,
                eta_seconds=eta,
            )
        )

    emit(force=True)

    def commit(point: CompiledPoint, document: dict, seconds: float) -> None:
        nonlocal completed, solved, solve_seconds
        if point.extra:
            document = {**document, "extra": point.extra}
        store.put(
            point.key,
            kind=point.kind,
            name=point.name,
            document=document,
            seconds=seconds,
            campaign=compiled.name,
        )
        _fold_result(point, document, counters, failed)
        completed += 1
        solved += 1
        solve_seconds += seconds
        emit()

    if pending and workers == 1:
        _worker_init(compiled.engine_documents)
        for point in pending:
            document, seconds = _execute_point(
                point.kind, point.name, point.workload, point.payload
            )
            commit(point, document, seconds)
    elif pending:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_worker_init,
            initargs=(compiled.engine_documents,),
        ) as pool:
            futures = {
                pool.submit(
                    _execute_point,
                    point.kind, point.name, point.workload, point.payload,
                ): point
                for point in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    document, seconds = future.result()
                    commit(futures[future], document, seconds)

    emit(force=True)
    return CampaignResult(
        campaign=compiled.name,
        total=len(compiled.points),
        store_hits=hits,
        solved=solved,
        failed_checks=tuple(failed),
        duplicate_points=compiled.duplicate_points,
        seconds=time.perf_counter() - start,
        counters=counters,
        keys={point.name: point.key for point in compiled.points},
        store_path=store.path,
    )
