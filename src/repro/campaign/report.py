"""Offline campaign reporting, decoupled from execution.

:class:`CampaignReport` renders summaries straight from a
:class:`~repro.campaign.store.ResultStore` — no models are loaded, no
point is re-solved, so reports on a million-point store are a sqlite
scan.  Three views:

* **solve rows** — one per stored solve point: expected reward,
  system-failure probability, reward interval, timing, plus any
  candidate metadata (cost, component count) the campaign attached;
* **Pareto frontiers** — the reward-vs-failure frontier over all solve
  rows, and the reward-vs-cost frontier over rows carrying candidate
  costs (the paper's §8 architecture-comparison question, at campaign
  scale);
* **fuzz summary** — seeds checked, failures (with their
  disagreements), simulation cross-checks performed.

``to_json`` emits the whole report; ``to_csv`` emits the solve rows as
a flat table for spreadsheets/pandas.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.progress import ScanCounters
from repro.core.sweep import SweepPointResult
from repro.campaign.store import ResultStore

#: Columns of the CSV view, in order.
_CSV_COLUMNS = (
    "name", "workload", "architecture", "expected_reward",
    "failed_probability", "reward_lower", "reward_upper",
    "unexplored_probability", "method", "configurations", "scan_cached",
    "seconds", "cost", "component_count",
)


@dataclass(frozen=True)
class SolveRow:
    """One solve point's report line (see :meth:`from_stored`)."""

    key: str
    name: str
    workload: str
    architecture: str | None
    expected_reward: float
    failed_probability: float
    reward_lower: float
    reward_upper: float
    unexplored_probability: float
    method: str
    configurations: int
    scan_cached: bool
    seconds: float
    extra: Mapping = field(default_factory=dict)

    @property
    def cost(self) -> float | None:
        candidate = self.extra.get("candidate")
        return None if candidate is None else candidate.get("cost")

    @property
    def component_count(self) -> int | None:
        candidate = self.extra.get("candidate")
        return None if candidate is None else candidate.get("component_count")

    def as_dict(self) -> dict:
        document = {
            "key": self.key,
            "name": self.name,
            "workload": self.workload,
            "architecture": self.architecture,
            "expected_reward": self.expected_reward,
            "failed_probability": self.failed_probability,
            "reward_lower": self.reward_lower,
            "reward_upper": self.reward_upper,
            "unexplored_probability": self.unexplored_probability,
            "method": self.method,
            "configurations": self.configurations,
            "scan_cached": self.scan_cached,
            "seconds": self.seconds,
        }
        if self.extra:
            document["extra"] = dict(self.extra)
        return document


@dataclass(frozen=True)
class FuzzRow:
    """One fuzz point's report line."""

    key: str
    name: str
    workload: str
    seed: int
    ok: bool
    simulated: bool
    state_count: int
    distinct_configurations: int
    seconds: float
    disagreements: tuple[dict, ...] = ()

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "name": self.name,
            "workload": self.workload,
            "seed": self.seed,
            "ok": self.ok,
            "simulated": self.simulated,
            "state_count": self.state_count,
            "distinct_configurations": self.distinct_configurations,
            "seconds": self.seconds,
            "disagreements": list(self.disagreements),
        }


def _dominates_rf(a: SolveRow, b: SolveRow) -> bool:
    """``a`` dominates ``b`` on (reward ↑, failure probability ↓)."""
    return (
        a.expected_reward >= b.expected_reward
        and a.failed_probability <= b.failed_probability
        and (
            a.expected_reward > b.expected_reward
            or a.failed_probability < b.failed_probability
        )
    )


def _dominates_rc(a: SolveRow, b: SolveRow) -> bool:
    """``a`` dominates ``b`` on (reward ↑, cost ↓)."""
    return (
        a.expected_reward >= b.expected_reward
        and a.cost <= b.cost
        and (a.expected_reward > b.expected_reward or a.cost < b.cost)
    )


def _frontier(rows: Sequence[SolveRow], dominates) -> list[SolveRow]:
    return [
        row
        for row in rows
        if not any(dominates(other, row) for other in rows if other is not row)
    ]


@dataclass(frozen=True)
class CampaignReport:
    """An offline view of one (or every) campaign in a store."""

    campaign: str | None
    solve_rows: tuple[SolveRow, ...]
    fuzz_rows: tuple[FuzzRow, ...]
    counters: ScanCounters
    total_seconds: float

    @classmethod
    def from_store(
        cls, store: ResultStore, *, campaign: str | None = None
    ) -> "CampaignReport":
        """Build the report from stored rows (``campaign=None`` reads
        everything in the store)."""
        solve_rows: list[SolveRow] = []
        fuzz_rows: list[FuzzRow] = []
        counters = ScanCounters()
        total_seconds = 0.0
        for stored in store.rows(campaign=campaign):
            total_seconds += stored.seconds
            document = stored.document
            if stored.kind == "solve":
                record = SweepPointResult.from_dict(document["record"])
                result = record.result
                lower, upper = result.reward_interval
                solve_rows.append(
                    SolveRow(
                        key=stored.key,
                        name=stored.name,
                        workload=document.get("workload", ""),
                        architecture=record.point.architecture,
                        expected_reward=result.expected_reward,
                        failed_probability=result.failed_probability,
                        reward_lower=lower,
                        reward_upper=upper,
                        unexplored_probability=result.unexplored_probability,
                        method=result.method,
                        configurations=len(result.records),
                        scan_cached=record.scan_cached,
                        seconds=stored.seconds,
                        extra=document.get("extra", {}),
                    )
                )
                counters.merge(
                    ScanCounters.from_dict(document.get("counters") or {})
                )
            elif stored.kind == "fuzz":
                fuzz_rows.append(
                    FuzzRow(
                        key=stored.key,
                        name=stored.name,
                        workload=document.get("workload", ""),
                        seed=int(document.get("seed", -1)),
                        ok=bool(document.get("ok", True)),
                        simulated=bool(document.get("simulated", False)),
                        state_count=int(document.get("state_count", 0)),
                        distinct_configurations=int(
                            document.get("distinct_configurations", 0)
                        ),
                        seconds=stored.seconds,
                        disagreements=tuple(
                            document.get("disagreements", [])
                        ),
                    )
                )
        return cls(
            campaign=campaign,
            solve_rows=tuple(solve_rows),
            fuzz_rows=tuple(fuzz_rows),
            counters=counters,
            total_seconds=total_seconds,
        )

    # -- derived views ---------------------------------------------------

    def pareto_reward_failure(self) -> tuple[SolveRow, ...]:
        """Rows not dominated on (expected reward ↑, system-failure
        probability ↓), sorted by decreasing reward."""
        frontier = _frontier(self.solve_rows, _dominates_rf)
        return tuple(
            sorted(frontier, key=lambda r: -r.expected_reward)
        )

    def pareto_reward_cost(self) -> tuple[SolveRow, ...]:
        """Rows carrying candidate costs, not dominated on (expected
        reward ↑, cost ↓), sorted by increasing cost — the campaign
        analogue of the optimizer's frontier."""
        costed = [row for row in self.solve_rows if row.cost is not None]
        return tuple(sorted(_frontier(costed, _dominates_rc),
                            key=lambda r: (r.cost, -r.expected_reward)))

    def failed_fuzz(self) -> tuple[FuzzRow, ...]:
        return tuple(row for row in self.fuzz_rows if not row.ok)

    def summary(self) -> dict:
        """The headline numbers of the report."""
        best = max(
            self.solve_rows,
            key=lambda r: r.expected_reward,
            default=None,
        )
        return {
            "campaign": self.campaign,
            "solve_points": len(self.solve_rows),
            "fuzz_points": len(self.fuzz_rows),
            "fuzz_failures": len(self.failed_fuzz()),
            "simulated_checks": sum(
                1 for row in self.fuzz_rows if row.simulated
            ),
            "total_seconds": self.total_seconds,
            "best_point": None if best is None else {
                "name": best.name,
                "expected_reward": best.expected_reward,
                "failed_probability": best.failed_probability,
            },
            "counters": self.counters.to_dict(),
        }

    # -- renderings ------------------------------------------------------

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {
                "summary": self.summary(),
                "solve": [row.as_dict() for row in self.solve_rows],
                "pareto": {
                    "reward_failure": [
                        row.name for row in self.pareto_reward_failure()
                    ],
                    "reward_cost": [
                        row.name for row in self.pareto_reward_cost()
                    ],
                },
                "fuzz": [row.as_dict() for row in self.fuzz_rows],
            },
            indent=indent,
        )

    def to_csv(self) -> str:
        """The solve rows as a flat CSV table."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(_CSV_COLUMNS)
        for row in self.solve_rows:
            writer.writerow(
                [
                    row.name, row.workload,
                    "" if row.architecture is None else row.architecture,
                    repr(row.expected_reward),
                    repr(row.failed_probability),
                    repr(row.reward_lower), repr(row.reward_upper),
                    repr(row.unexplored_probability),
                    row.method, row.configurations,
                    int(row.scan_cached), repr(row.seconds),
                    "" if row.cost is None else repr(row.cost),
                    "" if row.component_count is None
                    else row.component_count,
                ]
            )
        return buffer.getvalue()
