"""Exact probability of boolean expressions over independent variables.

Four methods are provided; all agree exactly (this equality is
property-tested in ``tests/booleans``):

* ``bdd`` — build an ROBDD and evaluate in linear time in BDD size.
  Default, and the only method that handles arbitrary (non-monotone)
  expressions efficiently.
* ``sdp`` — Abraham's sum of disjoint products; only for monotone path
  unions given as iterables of variable sets.
* ``inclusion_exclusion`` — textbook inclusion–exclusion over path
  events; exponential in the number of paths, used as an oracle in tests.
* ``enumeration`` — brute force over all 2^n assignments; the ground
  truth oracle for small n.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from itertools import combinations, product

from repro.booleans.bdd import BDD
from repro.booleans.expr import Expr
from repro.booleans.sdp import sdp_probability
from repro.errors import ModelError


def probability(expr: Expr, probs: Mapping[str, float]) -> float:
    """Exact probability that ``expr`` is true.

    ``probs[name]`` is the independent probability that variable ``name``
    is true; every variable of ``expr`` must be present, else
    :class:`~repro.errors.ModelError` is raised (a
    :class:`~repro.errors.ReproError`, so the CLI's error net turns it
    into a one-line message rather than a traceback).  Uses a BDD
    ordered by sorted variable name, which is adequate for the small
    knowledge expressions this library produces.
    """
    names = sorted(expr.variables())
    missing = [name for name in names if name not in probs]
    if missing:
        raise ModelError(f"missing probabilities for variables: {missing}")
    manager = BDD(names)
    node = manager.from_expr(expr)
    return manager.probability(node, probs)


def enumeration_probability(expr: Expr, probs: Mapping[str, float]) -> float:
    """Brute-force probability over all assignments (test oracle)."""
    names = sorted(expr.variables())
    total = 0.0
    for values in product((False, True), repeat=len(names)):
        assignment = dict(zip(names, values))
        if expr.evaluate(assignment):
            weight = 1.0
            for name, value in assignment.items():
                weight *= probs[name] if value else 1.0 - probs[name]
            total += weight
    return total


def inclusion_exclusion_probability(
    paths: Iterable[Iterable[str]],
    probs: Mapping[str, float],
) -> float:
    """Probability of a union of path events by inclusion–exclusion.

    Exponential in the number of paths; intended as a cross-check oracle
    for :func:`repro.booleans.sdp.sdp_probability`.
    """
    path_sets = [frozenset(p) for p in paths]
    total = 0.0
    for k in range(1, len(path_sets) + 1):
        sign = 1.0 if k % 2 == 1 else -1.0
        for combo in combinations(path_sets, k):
            union: frozenset[str] = frozenset().union(*combo)
            term = 1.0
            for name in union:
                term *= probs[name]
            total += sign * term
    return total


__all__ = [
    "enumeration_probability",
    "inclusion_exclusion_probability",
    "probability",
    "sdp_probability",
]
