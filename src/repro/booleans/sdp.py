"""Sum of disjoint products for monotone path unions.

Given minpaths P₁..P_m (sets of component names whose joint operation
connects a source to a target), system reliability is
``Pr[⋁ᵢ ⋀_{x∈Pᵢ} x]``.  Abraham's classical single-variable-inversion
algorithm rewrites that union as a sum of *disjoint* products, so the
probability is a plain sum of term probabilities.  This is the technique
the paper points to via Colbourn's monograph [22].

The implementation processes paths shortest-first (a standard ordering
heuristic) and represents each disjoint term as a pair of disjoint
variable sets ``(positive, negative)`` meaning
``⋀ positive ∧ ⋀ ¬negative``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def _normalise(paths: Iterable[Iterable[str]]) -> list[frozenset[str]]:
    """Deduplicate, drop supersets of other paths, and sort shortest-first.

    Removing non-minimal paths is not just an optimisation: Abraham's
    expansion assumes the path list is an antichain.
    """
    unique = {frozenset(p) for p in paths}
    minimal = [p for p in unique if not any(q < p for q in unique)]
    minimal.sort(key=lambda p: (len(p), sorted(p)))
    return minimal


def disjoint_products(
    paths: Iterable[Iterable[str]],
) -> list[tuple[frozenset[str], frozenset[str]]]:
    """Expand a union of paths into disjoint products.

    Returns a list of ``(positive, negative)`` pairs whose events are
    pairwise disjoint and whose union equals the union of the path
    events.  An empty path (always-true term) yields the single product
    ``(∅, ∅)``.
    """
    minimal = _normalise(paths)
    result: list[tuple[frozenset[str], frozenset[str]]] = []
    for i, path in enumerate(minimal):
        # Terms for path_i ∧ ¬(path_0 ∪ .. path_{i-1}); expand each earlier
        # path into its variables not already implied true by `path` or the
        # partial product built so far.
        partial: list[tuple[frozenset[str], frozenset[str]]] = [(path, frozenset())]
        for j in range(i):
            earlier = minimal[j]
            expanded: list[tuple[frozenset[str], frozenset[str]]] = []
            for pos, neg in partial:
                missing = sorted(earlier - pos)
                if not missing:
                    # earlier ⊆ pos: this product is inside an earlier path
                    # event, contribute nothing.
                    continue
                if neg & earlier:
                    # Some variable of the earlier path is already negated:
                    # the product is already disjoint from it.
                    expanded.append((pos, neg))
                    continue
                # Split on the first failed variable of `earlier`:
                # ¬(x₁∧..∧x_k) = ¬x₁ ∨ (x₁∧¬x₂) ∨ ... — disjoint by design.
                prefix: list[str] = []
                for var in missing:
                    expanded.append(
                        (pos | frozenset(prefix), neg | frozenset((var,)))
                    )
                    prefix.append(var)
            partial = expanded
        result.extend(partial)
    return result


def sdp_probability(
    paths: Iterable[Iterable[str]],
    probs: Mapping[str, float],
) -> float:
    """Probability of the union of path events via disjoint products.

    ``probs[name]`` is the independent probability that component ``name``
    is operational.
    """
    total = 0.0
    for pos, neg in disjoint_products(paths):
        term = 1.0
        for name in pos:
            term *= probs[name]
        for name in neg:
            term *= 1.0 - probs[name]
        total += term
    return total
