"""Immutable boolean-expression AST over named variables.

Expressions are built from :class:`Var` leaves and the connectives
:class:`And`, :class:`Or`, :class:`Not`, with module-level constants
:data:`TRUE` and :data:`FALSE`.  All nodes are hashable and compare
structurally, so they can be used as dictionary keys and deduplicated.

The constructors perform light, semantics-preserving simplification
(constant folding, flattening of nested conjunctions/disjunctions,
duplicate-term removal) so that expressions produced by graph algorithms
stay readable.  They do **not** attempt full minimisation — exact
probability evaluation is delegated to :mod:`repro.booleans.bdd`.

Nodes are **hash-consed**: constructing a node structurally equal to a
live one returns the existing instance, so identical subtrees share one
object and expression "trees" are really DAGs.  This makes equality a
pointer comparison in the common case, caches each node's hash (computed
once from the children's cached hashes), and lets consumers — the
knowledge-bit memo of the enumerative scan, the BDD builder, and above
all the bit-parallel compiler of :mod:`repro.core.kernel` — deduplicate
shared subexpressions by identity.  The intern tables hold weak
references only, so dropping every user of an expression frees it.
Pickling reconstructs nodes through the interning constructors, so
identity-based fast paths survive process boundaries (workers of the
parallel scan receive structurally shared problems).

The intern tables are guarded by one module-level lock, making node
construction safe from concurrent threads: without it, two threads
racing the same check-then-insert window could each construct a node
for the same structure, and the loser's escaped instance would break
every identity-based fast path downstream (``a == b`` but ``a is not
b``, so the kernel compiler's id-keyed CSE would duplicate work and
id-keyed memo tables would silently miss).  The long-lived analysis
service (:mod:`repro.service`) evaluates requests on a thread pool, so
this is a correctness requirement, not a nicety; the lock is
uncontended in single-threaded use and is never held while user code
runs (only around the table lookup/insert itself).

Example
-------
>>> from repro.booleans import Var, all_of, any_of
>>> up = {name: Var(name) for name in ("m1", "ag1", "ag3")}
>>> know = any_of([all_of([up["ag3"], up["m1"]]), all_of([up["ag1"], up["m1"]])])
>>> know.evaluate({"m1": True, "ag1": False, "ag3": True})
True
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping
from typing import Union
from weakref import WeakValueDictionary

#: One lock for every intern table.  Construction holds it only around
#: the lookup/insert pair (no user code, no recursion), so a single
#: shared lock cannot deadlock and keeps And/Or/Not/Var mutually
#: consistent when threads race structurally equal nodes.
_INTERN_LOCK = threading.Lock()


class Expr:
    """Base class for boolean expressions.

    Supports the operators ``&`` (and), ``|`` (or) and ``~`` (not) as a
    convenient construction syntax.
    """

    __slots__ = ("__weakref__",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment of variable names to booleans.

        Raises
        ------
        KeyError
            If a variable appearing in the expression is missing from
            ``assignment``.
        """
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """The set of variable names appearing in this expression."""
        raise NotImplementedError

    def substitute(self, assignment: Mapping[str, bool]) -> "Expr":
        """Partially evaluate: replace the given variables by constants.

        Variables not present in ``assignment`` are left symbolic.  The
        result is simplified by constant folding.
        """
        raise NotImplementedError

    def replace(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Substitute variables by whole expressions.

        Variables absent from ``mapping`` are left unchanged.  Used to
        compose models — e.g. replacing a component variable by
        "component up AND no common-cause event", which rewires every
        knowledge expression for dependent failures.
        """
        raise NotImplementedError

    def __and__(self, other: "Expr") -> "Expr":
        return And.of([self, other])

    def __or__(self, other: "Expr") -> "Expr":
        return Or.of([self, other])

    def __invert__(self) -> "Expr":
        return Not.of(self)


class _Constant(Expr):
    """The constants TRUE and FALSE (singletons)."""

    __slots__ = ("_value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "_value", bool(value))

    @property
    def value(self) -> bool:
        return self._value

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self._value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, assignment: Mapping[str, bool]) -> Expr:
        return self

    def replace(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def __repr__(self) -> str:
        return "TRUE" if self._value else "FALSE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Constant) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("const", self._value))

    def __reduce__(self):
        # Pickle by reference to the module-level singleton so that the
        # identity fast paths (``expr is TRUE``) survive crossing a
        # process boundary.
        return "TRUE" if self._value else "FALSE"


TRUE = _Constant(True)
FALSE = _Constant(False)


class Var(Expr):
    """A boolean variable identified by name.

    In this library a variable named after a component means "the
    component is operational (up)".  Instances are hash-consed:
    ``Var("x") is Var("x")``.
    """

    __slots__ = ("name", "_hash")

    _interned: "WeakValueDictionary[str, Var]" = WeakValueDictionary()

    def __new__(cls, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"variable name must be a non-empty string, got {name!r}")
        with _INTERN_LOCK:
            self = cls._interned.get(name)
            if self is None:
                self = super().__new__(cls)
                object.__setattr__(self, "name", name)
                object.__setattr__(self, "_hash", hash(("var", name)))
                cls._interned[name] = self
        return self

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment[self.name])

    def variables(self) -> frozenset[str]:
        return frozenset((self.name,))

    def substitute(self, assignment: Mapping[str, bool]) -> Expr:
        if self.name in assignment:
            return TRUE if assignment[self.name] else FALSE
        return self

    def replace(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Var) and other.name == self.name)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through the interning constructor so structural
        # sharing (and identity-based fast paths) survive pickling.
        return (Var, (self.name,))


class Not(Expr):
    """Negation.  Use :meth:`Not.of` (or ``~expr``) to construct.

    Instances are hash-consed: negating the same operand twice yields
    the same object.
    """

    __slots__ = ("operand", "_hash")

    _interned: "WeakValueDictionary[Expr, Not]" = WeakValueDictionary()

    def __new__(cls, operand: Expr):
        with _INTERN_LOCK:
            self = cls._interned.get(operand)
            if self is None:
                self = super().__new__(cls)
                object.__setattr__(self, "operand", operand)
                object.__setattr__(self, "_hash", hash(("not", operand)))
                cls._interned[operand] = self
        return self

    @staticmethod
    def of(operand: Expr) -> Expr:
        """Build a simplified negation (folds constants, removes ~~)."""
        if operand is TRUE or operand == TRUE:
            return FALSE
        if operand is FALSE or operand == FALSE:
            return TRUE
        if isinstance(operand, Not):
            return operand.operand
        return Not(operand)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def substitute(self, assignment: Mapping[str, bool]) -> Expr:
        return Not.of(self.operand.substitute(assignment))

    def replace(self, mapping: Mapping[str, Expr]) -> Expr:
        return Not.of(self.operand.replace(mapping))

    def __repr__(self) -> str:
        return f"~{self.operand!r}"

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Not) and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Not, (self.operand,))


class _NaryOp(Expr):
    """Shared machinery for And/Or: a tuple of deduplicated sub-terms.

    Each concrete subclass declares its own ``_interned`` table; nodes
    with equal term tuples are hash-consed to one instance per class.
    """

    __slots__ = ("terms", "_hash")
    _symbol = "?"
    _interned: "WeakValueDictionary[tuple[Expr, ...], _NaryOp]"

    def __new__(cls, terms: tuple[Expr, ...]):
        with _INTERN_LOCK:
            self = cls._interned.get(terms)
            if self is None:
                self = super().__new__(cls)
                object.__setattr__(self, "terms", terms)
                object.__setattr__(self, "_hash", hash((cls._symbol, terms)))
                cls._interned[terms] = self
        return self

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for term in self.terms:
            out = out | term.variables()
        return out

    def __repr__(self) -> str:
        inner = f" {self._symbol} ".join(repr(t) for t in self.terms)
        return f"({inner})"

    def __eq__(self, other: object) -> bool:
        return self is other or (
            type(other) is type(self) and other.terms == self.terms  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (type(self), (self.terms,))


def _flatten(
    terms: Iterable[Expr],
    *,
    op: type,
    identity: _Constant,
    annihilator: _Constant,
) -> Union[_Constant, list[Expr]]:
    """Flatten nested n-ary terms, fold constants, drop duplicates.

    Returns the annihilator constant if present, otherwise the reduced
    term list (which may be empty, meaning the identity).
    """
    seen: set[Expr] = set()
    out: list[Expr] = []
    stack = list(terms)
    stack.reverse()
    while stack:
        term = stack.pop()
        if not isinstance(term, Expr):
            raise TypeError(f"expected Expr, got {type(term).__name__}")
        if term == annihilator:
            return annihilator
        if term == identity:
            continue
        if isinstance(term, op):
            # Preserve order: push children so they pop in original order.
            stack.extend(reversed(term.terms))
            continue
        if term not in seen:
            seen.add(term)
            out.append(term)
    return out


class And(_NaryOp):
    """Conjunction of two or more terms.  Use :meth:`And.of` to build."""

    __slots__ = ()
    _symbol = "&"
    _interned: "WeakValueDictionary[tuple[Expr, ...], And]" = WeakValueDictionary()

    @staticmethod
    def of(terms: Iterable[Expr]) -> Expr:
        """Build a simplified conjunction.

        Flattens nested conjunctions, folds TRUE/FALSE, removes duplicate
        terms, and collapses to the single term or TRUE when possible.
        """
        reduced = _flatten(terms, op=And, identity=TRUE, annihilator=FALSE)
        if isinstance(reduced, _Constant):
            return reduced
        if not reduced:
            return TRUE
        if len(reduced) == 1:
            return reduced[0]
        return And(tuple(reduced))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(term.evaluate(assignment) for term in self.terms)

    def substitute(self, assignment: Mapping[str, bool]) -> Expr:
        return And.of(term.substitute(assignment) for term in self.terms)

    def replace(self, mapping: Mapping[str, Expr]) -> Expr:
        return And.of(term.replace(mapping) for term in self.terms)


class Or(_NaryOp):
    """Disjunction of two or more terms.  Use :meth:`Or.of` to build."""

    __slots__ = ()
    _symbol = "|"
    _interned: "WeakValueDictionary[tuple[Expr, ...], Or]" = WeakValueDictionary()

    @staticmethod
    def of(terms: Iterable[Expr]) -> Expr:
        """Build a simplified disjunction (dual of :meth:`And.of`)."""
        reduced = _flatten(terms, op=Or, identity=FALSE, annihilator=TRUE)
        if isinstance(reduced, _Constant):
            return reduced
        if not reduced:
            return FALSE
        if len(reduced) == 1:
            return reduced[0]
        return Or(tuple(reduced))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(term.evaluate(assignment) for term in self.terms)

    def substitute(self, assignment: Mapping[str, bool]) -> Expr:
        return Or.of(term.substitute(assignment) for term in self.terms)

    def replace(self, mapping: Mapping[str, Expr]) -> Expr:
        return Or.of(term.replace(mapping) for term in self.terms)


def all_of(terms: Iterable[Expr]) -> Expr:
    """Conjunction helper: ``all_of([])`` is TRUE."""
    return And.of(terms)


def any_of(terms: Iterable[Expr]) -> Expr:
    """Disjunction helper: ``any_of([])`` is FALSE."""
    return Or.of(terms)


def path_union(paths: Iterable[Iterable[str]]) -> Expr:
    """Monotone union of variable-name paths.

    Each path is a collection of variable names; the result is the
    disjunction over paths of the conjunction of their variables — the
    form of every ``know`` function in the paper (union of augmented
    minpaths).  An empty outer iterable yields FALSE (no path: the event
    can never be observed); an empty path yields TRUE.
    """
    return any_of(all_of(Var(name) for name in path) for path in paths)
