"""Boolean expressions over independent component-state variables.

The paper's ``know`` functions — "task *t* learns the operational state of
component *c*" — are monotone boolean functions: unions of *minpath*
conjunctions over component "up" variables.  This package provides:

* :mod:`repro.booleans.expr` — an immutable expression AST
  (:class:`Var`, :class:`Not`, :class:`And`, :class:`Or`, plus the
  constants :data:`TRUE` and :data:`FALSE`) with evaluation and
  substitution.
* :mod:`repro.booleans.bdd` — reduced ordered binary decision diagrams
  with exact probability evaluation in time linear in BDD size.
* :mod:`repro.booleans.sdp` — sum-of-disjoint-products (Abraham's
  algorithm) for monotone path unions, the classical network-reliability
  technique cited by the paper ([22] Colbourn).
* :mod:`repro.booleans.probability` — one entry point,
  :func:`probability`, dispatching to BDD / SDP / inclusion–exclusion /
  brute-force enumeration, all of which agree exactly (property-tested).
"""

from repro.booleans.expr import (
    FALSE,
    TRUE,
    And,
    Expr,
    Not,
    Or,
    Var,
    all_of,
    any_of,
    path_union,
)
from repro.booleans.bdd import BDD
from repro.booleans.sdp import disjoint_products, sdp_probability
from repro.booleans.probability import (
    enumeration_probability,
    inclusion_exclusion_probability,
    probability,
)

__all__ = [
    "And",
    "BDD",
    "Expr",
    "FALSE",
    "Not",
    "Or",
    "TRUE",
    "Var",
    "all_of",
    "any_of",
    "disjoint_products",
    "enumeration_probability",
    "inclusion_exclusion_probability",
    "path_union",
    "probability",
    "sdp_probability",
]
