"""Reduced ordered binary decision diagrams (ROBDDs).

A :class:`BDD` manager hash-conses nodes so that equivalent functions are
represented by the same node id, making equality checks O(1) and
probability evaluation linear in diagram size.  This is the workhorse for
exact probability of ``know`` expressions and for the factored
performability evaluator.

Node encoding
-------------
Terminals are the integers ``0`` and ``1``.  Internal nodes are integer
ids ≥ 2 mapping to ``(level, low, high)`` triples, where ``level`` indexes
into the manager's variable order, ``low`` is the cofactor for the
variable being False and ``high`` for True.  The reduction invariants —
``low != high`` and unique ``(level, low, high)`` triples — are maintained
by :meth:`BDD._mk`.

Thread safety
-------------
Each manager carries one re-entrant lock.  Public operations acquire it
once at the entry point and recurse through unlocked private bodies, so
the per-node cost is unchanged and a manager shared between the analysis
service's worker threads cannot corrupt its unique/apply/negate/from_expr
tables (all four are check-then-insert caches, unsafe under races).
Distinct managers never share state, so single-threaded workloads — one
manager per scan — only pay one uncontended acquire per operation.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence

from repro.booleans.expr import FALSE, TRUE, And, Expr, Not, Or, Var

#: Terminal node ids.
ZERO = 0
ONE = 1


class BDD:
    """A manager for reduced ordered BDDs over a fixed variable order.

    Parameters
    ----------
    order:
        Variable names, outermost (root) first.  Every expression
        converted by this manager may only mention these variables.

    Example
    -------
    >>> manager = BDD(["a", "b"])
    >>> from repro.booleans import Var
    >>> node = manager.from_expr(Var("a") | Var("b"))
    >>> manager.probability(node, {"a": 0.9, "b": 0.9})
    0.99
    """

    def __init__(self, order: Sequence[str]):
        if len(set(order)) != len(order):
            raise ValueError("variable order contains duplicates")
        self._order: tuple[str, ...] = tuple(order)
        self._level: dict[str, int] = {name: i for i, name in enumerate(order)}
        # id -> (level, low, high); ids 0 and 1 are the terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        # Hash-consed Expr -> node memo for from_expr: shared DAG nodes
        # convert exactly once per manager.
        self._expr_cache: dict[Expr, int] = {}
        self.apply_cache_hits = 0
        # Guards every table above; see "Thread safety" in the module
        # docstring.  Re-entrant so composed public calls stay cheap.
        self._lock = threading.RLock()

    @property
    def order(self) -> tuple[str, ...]:
        """The variable order, root level first."""
        return self._order

    def __len__(self) -> int:
        """Total number of allocated nodes including the two terminals."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Node construction

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD for a single variable."""
        with self._lock:
            return self._var(name)

    def _var(self, name: str) -> int:
        try:
            level = self._level[name]
        except KeyError:
            raise KeyError(f"variable {name!r} is not in this manager's order") from None
        return self._mk(level, ZERO, ONE)

    # ------------------------------------------------------------------
    # Boolean operations

    def apply_and(self, u: int, v: int) -> int:
        """Conjunction of two nodes."""
        with self._lock:
            return self._apply("and", u, v)

    def apply_or(self, u: int, v: int) -> int:
        """Disjunction of two nodes."""
        with self._lock:
            return self._apply("or", u, v)

    def negate(self, u: int) -> int:
        """Negation of a node."""
        with self._lock:
            return self._negate(u)

    def _negate(self, u: int) -> int:
        if u == ZERO:
            return ONE
        if u == ONE:
            return ZERO
        cached = self._not_cache.get(u)
        if cached is not None:
            return cached
        level, low, high = self._nodes[u]
        result = self._mk(level, self._negate(low), self._negate(high))
        self._not_cache[u] = result
        return result

    def _apply(self, op: str, u: int, v: int) -> int:
        if op == "and":
            if u == ZERO or v == ZERO:
                return ZERO
            if u == ONE:
                return v
            if v == ONE:
                return u
        else:  # or
            if u == ONE or v == ONE:
                return ONE
            if u == ZERO:
                return v
            if v == ZERO:
                return u
        if u == v:
            return u
        if u > v:
            u, v = v, u  # both ops are commutative; canonicalise the key
        key = (op, u, v)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.apply_cache_hits += 1
            return cached
        u_level = self._nodes[u][0]
        v_level = self._nodes[v][0]
        level = min(u_level, v_level)
        u_low, u_high = (self._nodes[u][1], self._nodes[u][2]) if u_level == level else (u, u)
        v_low, v_high = (self._nodes[v][1], self._nodes[v][2]) if v_level == level else (v, v)
        result = self._mk(
            level,
            self._apply(op, u_low, v_low),
            self._apply(op, u_high, v_high),
        )
        self._apply_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Conversion and queries

    def from_expr(self, expr: Expr) -> int:
        """Convert an expression AST into a node of this manager.

        Conversions are memoised per manager, keyed by the hash-consed
        expression node: a shared DAG subterm is converted exactly once
        however many indicator expressions reference it.  (Without the
        memo, converting the symbolic-indicator DAGs of
        :func:`repro.core.kernel.derive_indicators` — where a service's
        ``working`` condition is shared by dozens of parents — would
        redo the same apply work once per reference.)
        """
        with self._lock:
            return self._from_expr(expr)

    def _from_expr(self, expr: Expr) -> int:
        cached = self._expr_cache.get(expr)
        if cached is not None:
            return cached
        if expr == TRUE:
            node = ONE
        elif expr == FALSE:
            node = ZERO
        elif isinstance(expr, Var):
            node = self._var(expr.name)
        elif isinstance(expr, Not):
            node = self._negate(self._from_expr(expr.operand))
        elif isinstance(expr, And):
            node = ONE
            for term in expr.terms:
                node = self._apply("and", node, self._from_expr(term))
                if node == ZERO:
                    break
        elif isinstance(expr, Or):
            node = ZERO
            for term in expr.terms:
                node = self._apply("or", node, self._from_expr(term))
                if node == ONE:
                    break
        else:
            raise TypeError(
                f"cannot convert {type(expr).__name__} to a BDD node"
            )
        self._expr_cache[expr] = node
        return node

    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate a node under a total variable assignment."""
        with self._lock:
            while node not in (ZERO, ONE):
                level, low, high = self._nodes[node]
                node = high if assignment[self._order[level]] else low
        return node == ONE

    def probability(self, node: int, probs: Mapping[str, float]) -> float:
        """Exact probability that the function is true.

        ``probs[name]`` is the (independent) probability that variable
        ``name`` is True.  Runs in time linear in the number of distinct
        nodes reachable from ``node``.
        """
        cache: dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def walk(n: int) -> float:
            found = cache.get(n)
            if found is not None:
                return found
            level, low, high = self._nodes[n]
            p = probs[self._order[level]]
            value = (1.0 - p) * walk(low) + p * walk(high)
            cache[n] = value
            return value

        with self._lock:
            return walk(node)

    def support(self, node: int) -> frozenset[str]:
        """Variables the function actually depends on."""
        seen: set[int] = set()
        names: set[str] = set()
        stack = [node]
        with self._lock:
            return self._support(stack, seen, names)

    def _support(self, stack, seen, names) -> frozenset[str]:
        while stack:
            n = stack.pop()
            if n in (ZERO, ONE) or n in seen:
                continue
            seen.add(n)
            level, low, high = self._nodes[n]
            names.add(self._order[level])
            stack.append(low)
            stack.append(high)
        return frozenset(names)

    def satisfying_fraction(self, node: int) -> float:
        """Fraction of the 2^n assignments that satisfy the function."""
        return self.probability(node, {name: 0.5 for name in self._order})

    def signature_masses(
        self, outputs: Sequence[int], probs: Mapping[str, float]
    ) -> dict[tuple[bool, ...], float]:
        """Joint distribution of several functions' truth values.

        Returns ``{(b_0, ..., b_{k-1}): probability}`` over the
        signatures actually reachable — the probability that output
        ``i`` evaluates to ``b_i`` for all ``i`` simultaneously, under
        independent per-variable truth probabilities ``probs``.

        The computation splits a constraint BDD on one output at a
        time, pruning empty branches immediately, so the work is
        proportional to the number of *reachable* signatures (distinct
        configurations, in the performability reading) times the apply
        cost — never to the 2^k signature space, and never to the 2^n
        variable space.  Each leaf's probability is one weighted
        traversal, linear in its diagram size.
        """
        with self._lock:
            branches: list[tuple[tuple[bool, ...], int]] = [((), ONE)]
            for output in outputs:
                negated = self._negate(output)
                split: list[tuple[tuple[bool, ...], int]] = []
                for signature, constraint in branches:
                    high = self._apply("and", constraint, output)
                    if high != ZERO:
                        split.append((signature + (True,), high))
                    low = self._apply("and", constraint, negated)
                    if low != ZERO:
                        split.append((signature + (False,), low))
                branches = split
            return {
                signature: self.probability(constraint, probs)
                for signature, constraint in branches
            }
