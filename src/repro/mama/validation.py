"""Whole-model validation for MAMA architectures.

Beyond the per-connection role rules (enforced eagerly by
:class:`~repro.mama.model.MAMAModel`), this module checks:

* no duplicate connector (same kind, source, target);
* **remote-watch rule** (§2C): if a task watches a *remote* task (one
  hosted on a different processor), it must also watch that task's
  processor — otherwise a silent heartbeat cannot be attributed to task
  crash versus node crash.

Cycles in the connector graph are allowed: the paper permits them and
assumes information flow is managed so as not to cycle; the minpath
algorithms in :mod:`repro.mama.minpaths` only ever use simple paths.

:func:`validate_mama` raises on hard violations;
:func:`remote_watch_violations` returns the offending (monitor,
monitored) pairs so callers can also use it as a lint.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.mama.model import ConnectorKind, MAMAModel


def remote_watch_violations(model: MAMAModel) -> list[tuple[str, str]]:
    """(monitor, monitored-task) pairs violating the remote-watch rule."""
    violations: list[tuple[str, str]] = []
    for connector in model.connectors.values():
        if not connector.kind.is_watch:
            continue
        monitored = model.components[connector.source]
        monitor = model.components[connector.target]
        if not monitored.kind.is_task:
            continue
        if monitored.processor == monitor.processor:
            continue  # local watch: node death kills both, nothing to attribute
        watches_processor = any(
            other.kind.is_watch
            and other.target == monitor.name
            and other.source == monitored.processor
            for other in model.connectors.values()
        )
        if not watches_processor:
            violations.append((monitor.name, monitored.name))
    return violations


def validate_mama(model: MAMAModel, *, enforce_remote_watch: bool = True) -> None:
    """Raise :class:`~repro.errors.ModelError` on the first violation."""
    _check_duplicates(model)
    if enforce_remote_watch:
        violations = remote_watch_violations(model)
        if violations:
            monitor, monitored = violations[0]
            raise ModelError(
                f"{monitor!r} watches remote task {monitored!r} but not its "
                f"processor {model.components[monitored].processor!r} "
                "(remote-watch rule, paper §2C)"
            )


def _check_duplicates(model: MAMAModel) -> None:
    seen: set[tuple[ConnectorKind, str, str]] = set()
    for connector in model.connectors.values():
        key = (connector.kind, connector.source, connector.target)
        if key in seen:
            raise ModelError(
                f"duplicate connector {connector.kind.value} "
                f"{connector.source!r} -> {connector.target!r}"
            )
        seen.add(key)
