"""Generic factories for the four classical management organisations.

§6 of the paper compares four fault-management architectures drawn from
the manager–agent classification of network-management practice:

* **centralized** — one manager handles every agent and makes all
  decisions;
* **distributed** — one manager per domain, peers exchanging status
  through notify links;
* **hierarchical** — domain managers report to a manager-of-managers
  (MOM) and never talk to each other directly;
* **network** — a general manager topology mixing both styles.

These factories build well-formed MAMA models from a compact
description.  Naming is systematic (``ag.<task>``, ``aw.<src>-><dst>``,
…); the paper's exact Figures 7–10, with the paper's own component and
connector names, are constructed in :mod:`repro.experiments.architectures`.

Conventions implemented (matching the paper's figures):

* every monitored application task gets a local agent on the same
  processor, alive-watching it;
* agents status-watch-report to their manager; the manager alive-watches
  the processor of every remote agent (remote-watch rule);
* reconfiguration notifications flow manager → local agent → subscriber
  application task.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ModelError
from repro.mama.model import MAMAModel


@dataclass(frozen=True)
class Domain:
    """One management domain for the multi-manager architectures.

    Parameters
    ----------
    manager:
        Name of the domain manager task.
    manager_processor:
        Processor hosting the domain manager.
    tasks:
        Monitored application tasks, mapping task name → processor name.
    subscribers:
        Application tasks (subset of ``tasks`` keys) that receive
        reconfiguration notifications.
    links:
        Network links the domain manager pings directly (see
        :func:`_wire_links`).
    """

    manager: str
    manager_processor: str
    tasks: Mapping[str, str]
    subscribers: tuple[str, ...] = ()
    links: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = [s for s in self.subscribers if s not in self.tasks]
        if unknown:
            raise ModelError(f"domain {self.manager!r}: subscribers {unknown} not in tasks")


def _agent_name(task: str) -> str:
    return f"ag.{task}"


def _add_processor_once(model: MAMAModel, name: str) -> None:
    if name not in model.components:
        model.add_processor(name)


def _wire_links(
    model: MAMAModel, links: Iterable[str], manager: str
) -> None:
    """Network links pinged (alive-watched) directly by ``manager``.

    Links enter MAMA as processor-kind components — like node pings,
    they can only be connected in the monitored role of an alive-watch.
    """
    for link in links:
        _add_processor_once(model, link)
        aw_name = f"aw.{link}->{manager}"
        if aw_name not in model.connectors:
            model.add_alive_watch(aw_name, monitored=link, monitor=manager)


def _wire_agents(
    model: MAMAModel,
    tasks: Mapping[str, str],
    manager: str,
    subscribers: Iterable[str],
) -> None:
    """Agents for each task, reporting to ``manager``; notify paths to
    subscribers; manager alive-watches every task processor."""
    for task, processor in tasks.items():
        _add_processor_once(model, processor)
        if task not in model.components:
            model.add_application_task(task, processor=processor)
        agent = _agent_name(task)
        model.add_agent(agent, processor=processor)
        model.add_alive_watch(f"aw.{task}->{agent}", monitored=task, monitor=agent)
        model.add_status_watch(f"sw.{agent}->{manager}", monitored=agent, monitor=manager)
        aw_name = f"aw.{processor}->{manager}"
        if aw_name not in model.connectors:
            model.add_alive_watch(aw_name, monitored=processor, monitor=manager)
    for task in subscribers:
        agent = _agent_name(task)
        model.add_notify(f"ntfy.{manager}->{agent}", notifier=manager, subscriber=agent)
        model.add_notify(f"ntfy.{agent}->{task}", notifier=agent, subscriber=task)


def centralized_architecture(
    *,
    tasks: Mapping[str, str],
    subscribers: Sequence[str],
    manager: str = "m1",
    manager_processor: str = "proc.m1",
    links: Sequence[str] = (),
    name: str = "centralized",
) -> MAMAModel:
    """One central manager handling local agents for every task.

    Parameters
    ----------
    tasks:
        Monitored application tasks: task name → processor name.
    subscribers:
        Tasks that receive reconfiguration notifications.
    links:
        Network links the manager pings directly (needed whenever an
        application entry ``depends_on`` a link — the deciding task can
        only select a target whose links it can observe).
    """
    model = MAMAModel(name=name)
    _add_processor_once(model, manager_processor)
    model.add_manager(manager, processor=manager_processor)
    _wire_agents(model, tasks, manager, subscribers)
    _wire_links(model, links, manager)
    return model.validated()


def distributed_architecture(
    *,
    domains: Sequence[Domain],
    name: str = "distributed",
) -> MAMAModel:
    """Peer domain managers exchanging status through notify links.

    Every ordered pair of domain managers gets a notify connector, so
    any manager's knowledge reaches any other in one hop.
    """
    if len(domains) < 2:
        raise ModelError("a distributed architecture needs at least two domains")
    model = MAMAModel(name=name)
    for domain in domains:
        _add_processor_once(model, domain.manager_processor)
        model.add_manager(domain.manager, processor=domain.manager_processor)
    for domain in domains:
        _wire_agents(model, domain.tasks, domain.manager, domain.subscribers)
        _wire_links(model, domain.links, domain.manager)
    for source in domains:
        for target in domains:
            if source.manager == target.manager:
                continue
            model.add_notify(
                f"ntfy.{source.manager}->{target.manager}",
                notifier=source.manager,
                subscriber=target.manager,
            )
    return model.validated()


def hierarchical_architecture(
    *,
    domains: Sequence[Domain],
    mom: str = "mom1",
    mom_processor: str = "proc.mom1",
    name: str = "hierarchical",
) -> MAMAModel:
    """Domain managers coordinated by a manager-of-managers (MOM).

    Domain managers status-watch-report to the MOM and receive
    cross-domain knowledge from it by notify; they never talk to each
    other directly.  The MOM alive-watches each domain manager's
    processor (remote-watch rule).
    """
    if not domains:
        raise ModelError("a hierarchical architecture needs at least one domain")
    model = MAMAModel(name=name)
    _add_processor_once(model, mom_processor)
    model.add_manager(mom, processor=mom_processor)
    for domain in domains:
        _add_processor_once(model, domain.manager_processor)
        model.add_manager(domain.manager, processor=domain.manager_processor)
    for domain in domains:
        _wire_agents(model, domain.tasks, domain.manager, domain.subscribers)
        _wire_links(model, domain.links, domain.manager)
        model.add_status_watch(
            f"sw.{domain.manager}->{mom}", monitored=domain.manager, monitor=mom
        )
        if f"aw.{domain.manager_processor}->{mom}" not in model.connectors:
            model.add_alive_watch(
                f"aw.{domain.manager_processor}->{mom}",
                monitored=domain.manager_processor,
                monitor=mom,
            )
        model.add_notify(
            f"ntfy.{mom}->{domain.manager}", notifier=mom, subscriber=domain.manager
        )
    return model.validated()


def network_architecture(
    *,
    server_domains: Sequence[Domain],
    integrated_domains: Sequence[Domain],
    name: str = "network",
) -> MAMAModel:
    """The general "network" organisation: integrated managers sit above
    peer domain managers in an arbitrary mesh.

    Each integrated manager status-watches **every** server-domain
    manager (and alive-watches that manager's processor), so knowledge
    collected in any server domain reaches every integrated manager
    directly.  Integrated managers handle their own application tasks
    through local agents exactly like a centralized manager.
    """
    if not server_domains or not integrated_domains:
        raise ModelError(
            "a network architecture needs at least one server domain and "
            "one integrated domain"
        )
    model = MAMAModel(name=name)
    for domain in (*server_domains, *integrated_domains):
        _add_processor_once(model, domain.manager_processor)
        model.add_manager(domain.manager, processor=domain.manager_processor)
    for domain in (*server_domains, *integrated_domains):
        _wire_agents(model, domain.tasks, domain.manager, domain.subscribers)
        _wire_links(model, domain.links, domain.manager)
    for integrated in integrated_domains:
        for server_domain in server_domains:
            model.add_status_watch(
                f"sw.{server_domain.manager}->{integrated.manager}",
                monitored=server_domain.manager,
                monitor=integrated.manager,
            )
            aw_name = f"aw.{server_domain.manager_processor}->{integrated.manager}"
            if aw_name not in model.connectors:
                model.add_alive_watch(
                    aw_name,
                    monitored=server_domain.manager_processor,
                    monitor=integrated.manager,
                )
    return model.validated()
