"""MAMA — Model for Availability Management Architectures (§2C, §4).

A MAMA model describes the fault-management side of a system: the
application tasks being watched, the agent and manager tasks doing the
watching and deciding, the processors they run on, and the typed
connectors between them:

* **alive-watch** — conveys only crash/alive data about the monitored
  component to the monitor (heartbeats, pings);
* **status-watch** — additionally propagates status data about *other*
  components to the monitor (a node agent reporting everything it
  knows);
* **notify** — the notifier pushes status data it has received (but not
  its own status) to a subscriber (manager-to-manager links and
  reconfiguration commands).

The submodules provide the model classes (:mod:`repro.mama.model`), the
role/connection well-formedness rules (:mod:`repro.mama.validation`),
the knowledge propagation graph and ``know`` functions of §4
(:mod:`repro.mama.knowledge`, :mod:`repro.mama.minpaths`), generic
builders for the four classical management organisations
(:mod:`repro.mama.architectures`), and DOT export (:mod:`repro.mama.dot`).
"""

from repro.mama.model import (
    Component,
    ComponentKind,
    Connector,
    ConnectorKind,
    MAMAModel,
)
from repro.mama.knowledge import KnowledgeGraph, KnowledgeArc
from repro.mama.minpaths import enumerate_minpaths
from repro.mama.validation import validate_mama
from repro.mama.architectures import (
    centralized_architecture,
    distributed_architecture,
    hierarchical_architecture,
    network_architecture,
)

__all__ = [
    "Component",
    "ComponentKind",
    "Connector",
    "ConnectorKind",
    "KnowledgeArc",
    "KnowledgeGraph",
    "MAMAModel",
    "centralized_architecture",
    "distributed_architecture",
    "enumerate_minpaths",
    "hierarchical_architecture",
    "network_architecture",
    "validate_mama",
]
