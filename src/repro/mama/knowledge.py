"""The knowledge propagation graph and ``know`` functions (§4).

Transformation of a MAMA model into the flat graph *K*:

* each component ``x`` becomes a **component arc** ``x.in → x.out``
  named after the component — a component failure is an arc failure;
* each connector ``c`` from source component ``i`` to target component
  ``j`` becomes an arc ``i.out → j.in`` of the connector's kind, named
  after the connector.

``know[c, t]`` — task *t* can learn the operational state of component
*c* — is the union over *augmented minpaths* from ``c.out`` to ``t.out``
of the conjunction of arc-operational variables, where:

* the first arc of a path must be alive-watch or status-watch (the
  detection), subsequent arcs must be component, status-watch or notify
  (the relay) — an alive-watch connector carries no third-party status,
  so it can never appear mid-path;
* when *c* is a processor, paths are computed on *K* minus the component
  arcs of tasks hosted on *c* (a dead node's tasks cannot relay its
  status);
* each minpath is augmented with the processor component of every task
  whose component arc appears on it (Pq⁺ in the paper) — a relay task
  only relays while its node is up.

The resulting expressions mention component *and* connector names as
variables; connector variables default to probability-1 operational in
the analyses (the paper ignores network failures) but are retained so
that connector failures can be modelled without any code change.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.booleans.expr import Expr, path_union
from repro.errors import ModelError
from repro.mama.minpaths import Arc, enumerate_minpaths, minimal_sets
from repro.mama.model import ComponentKind, ConnectorKind, MAMAModel

#: Arc-kind labels used in the knowledge propagation graph.
COMPONENT = "component"
ALIVE_WATCH = ConnectorKind.ALIVE_WATCH.value
STATUS_WATCH = ConnectorKind.STATUS_WATCH.value
NOTIFY = ConnectorKind.NOTIFY.value

_FIRST_KINDS = frozenset((ALIVE_WATCH, STATUS_WATCH))
_REST_KINDS = frozenset((COMPONENT, STATUS_WATCH, NOTIFY))


@dataclass(frozen=True)
class KnowledgeArc(Arc):
    """An arc of the knowledge propagation graph (see :class:`Arc`)."""


def _in(name: str) -> str:
    return f"{name}.in"


def _out(name: str) -> str:
    return f"{name}.out"


class KnowledgeGraph:
    """Knowledge propagation graph *K* derived from a MAMA model."""

    def __init__(self, mama: MAMAModel):
        mama.validated()
        self._mama = mama
        arcs: list[KnowledgeArc] = []
        for component in mama.components.values():
            arcs.append(
                KnowledgeArc(
                    name=component.name,
                    kind=COMPONENT,
                    iv=_in(component.name),
                    tv=_out(component.name),
                )
            )
        for connector in mama.connectors.values():
            arcs.append(
                KnowledgeArc(
                    name=connector.name,
                    kind=connector.kind.value,
                    iv=_out(connector.source),
                    tv=_in(connector.target),
                )
            )
        self._arcs: tuple[KnowledgeArc, ...] = tuple(arcs)

    @property
    def arcs(self) -> tuple[KnowledgeArc, ...]:
        return self._arcs

    @property
    def mama(self) -> MAMAModel:
        return self._mama

    # ------------------------------------------------------------------

    def _component(self, name: str):
        component = self._mama.components.get(name)
        if component is None:
            raise ModelError(f"unknown MAMA component {name!r}")
        return component

    def minpaths(self, component: str, task: str) -> list[frozenset[str]]:
        """Augmented minpaths Pq⁺ from ``component`` to ``task``.

        Each returned set contains component and connector *names* whose
        joint operation lets ``task`` learn the state of ``component``.
        """
        watched = self._component(component)
        observer = self._component(task)
        if not observer.kind.is_task:
            raise ModelError(f"observer {task!r} must be a task component")

        arcs: Iterable[KnowledgeArc] = self._arcs
        if watched.kind is ComponentKind.PROCESSOR:
            hosted = {t.name for t in self._mama.tasks_on(component)}
            arcs = [
                arc
                for arc in self._arcs
                if not (arc.kind == COMPONENT and arc.name in hosted)
            ]

        raw = enumerate_minpaths(
            list(arcs),
            _out(component),
            _out(task),
            first_kinds=_FIRST_KINDS,
            rest_kinds=_REST_KINDS,
        )
        return minimal_sets(self._augment(path) for path in raw)

    def _augment(self, path: frozenset[str]) -> frozenset[str]:
        """Pq⁺: add the processor of every task whose arc is on the path."""
        extra: set[str] = set()
        for name in path:
            component = self._mama.components.get(name)
            if component is not None and component.kind.is_task:
                assert component.processor is not None
                extra.add(component.processor)
        return path | extra

    def know_expr(self, component: str, task: str) -> Expr:
        """The boolean ``know[component, task]`` expression.

        Variables are component and connector names, true meaning
        operational.  FALSE when no admissible path exists (the task can
        never learn that component's state).
        """
        return path_union(self.minpaths(component, task))

    def know_table(
        self, pairs: Iterable[tuple[str, str]]
    ) -> Mapping[tuple[str, str], Expr]:
        """``know_expr`` for many (component, task) pairs at once."""
        return {pair: self.know_expr(*pair) for pair in pairs}

    def connector_names(self) -> list[str]:
        """Names of all connector arcs (candidate perfectly-reliable vars)."""
        return list(self._mama.connectors)
