"""Graphviz (DOT) export for MAMA models and knowledge graphs.

Returns DOT source text for comparison with the paper's Figures 4 and 6.
Watch connectors are drawn monitored → monitor (information flow);
notify connectors notifier → subscriber.
"""

from __future__ import annotations

from repro.mama.knowledge import KnowledgeGraph
from repro.mama.model import ComponentKind, ConnectorKind, MAMAModel


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


_COMPONENT_SHAPES = {
    ComponentKind.APPLICATION_TASK: "box",
    ComponentKind.AGENT_TASK: "box",
    ComponentKind.MANAGER_TASK: "box",
    ComponentKind.PROCESSOR: "component",
}

_CONNECTOR_STYLES = {
    ConnectorKind.ALIVE_WATCH: "solid",
    ConnectorKind.STATUS_WATCH: "bold",
    ConnectorKind.NOTIFY: "dashed",
}


def mama_to_dot(model: MAMAModel) -> str:
    """DOT rendering of a MAMA model, tasks clustered by processor."""
    lines = ["digraph mama {", "  rankdir=TB;", "  node [fontsize=10];"]
    for processor in model.processors():
        lines.append(f"  subgraph cluster_{abs(hash(processor.name))} {{")
        lines.append(f"    label={_quote(processor.name + ':Proc')};")
        for task in model.tasks_on(processor.name):
            label = f"{task.name}:{task.kind.value}"
            lines.append(
                f"    {_quote(task.name)} "
                f"[shape={_COMPONENT_SHAPES[task.kind]}, label={_quote(label)}];"
            )
        lines.append(
            f"    {_quote(processor.name)} [shape=component, "
            f"label={_quote(processor.name)}, style=dotted];"
        )
        lines.append("  }")
    for connector in model.connectors.values():
        style = _CONNECTOR_STYLES[connector.kind]
        label = f"{connector.name}:{connector.kind.value}"
        lines.append(
            f"  {_quote(connector.source)} -> {_quote(connector.target)} "
            f"[style={style}, label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def knowledge_graph_to_dot(graph: KnowledgeGraph) -> str:
    """DOT rendering of a knowledge propagation graph (compare Figure 6)."""
    lines = [
        "digraph knowledge {",
        "  rankdir=LR;",
        "  node [fontsize=9, shape=point];",
    ]
    for arc in graph.arcs:
        label = f"{arc.name}; {arc.kind}"
        style = "solid" if arc.kind == "component" else "dashed"
        lines.append(
            f"  {_quote(str(arc.iv))} -> {_quote(str(arc.tv))} "
            f"[style={style}, label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)
