"""Typed minpath enumeration on directed arc graphs.

A *minpath* between two vertices is a minimal set of arcs whose joint
operation connects them: every proper subset disconnects the pair.  The
paper (citing Colbourn [22]) computes the ``know`` functions as unions of
minpaths through the knowledge propagation graph, with a type constraint:
the first arc must be a watch arc (the detection event) and subsequent
arcs must be component, status-watch or notify arcs (the relay).

This module implements the enumeration generically over ``(name, kind,
iv, tv)`` arcs so that it can be unit-tested against brute force on
random graphs, independent of the MAMA semantics.
"""

from __future__ import annotations

from collections.abc import Collection, Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import TypeVar

Vertex = TypeVar("Vertex", bound=Hashable)


@dataclass(frozen=True)
class Arc:
    """A directed, typed arc: ``iv → tv``."""

    name: str
    kind: str
    iv: Hashable
    tv: Hashable


def minimal_sets(sets: Iterable[frozenset[str]]) -> list[frozenset[str]]:
    """Filter an iterable of sets down to the inclusion-minimal ones.

    Output is deterministic: sorted by (size, sorted member names).
    """
    unique = set(sets)
    minimal = [s for s in unique if not any(other < s for other in unique)]
    minimal.sort(key=lambda s: (len(s), sorted(s)))
    return minimal


def enumerate_minpaths(
    arcs: Sequence[Arc],
    source: Hashable,
    target: Hashable,
    *,
    first_kinds: Collection[str] | None = None,
    rest_kinds: Collection[str] | None = None,
) -> list[frozenset[str]]:
    """All minpaths (as arc-name sets) from ``source`` to ``target``.

    Parameters
    ----------
    arcs:
        The graph.  Arc names must be unique.
    first_kinds:
        Permitted kinds for the first arc of a path (``None`` = any).
    rest_kinds:
        Permitted kinds for every subsequent arc (``None`` = any).

    Notes
    -----
    Enumerates simple paths (no repeated vertex) by depth-first search
    and then filters the resulting arc sets for minimality; with typed
    constraints a simple path's arc set is not automatically minimal
    relative to another path's.
    """
    names = [arc.name for arc in arcs]
    if len(set(names)) != len(names):
        raise ValueError("arc names must be unique")
    if source == target:
        return [frozenset()]

    by_source: dict[Hashable, list[Arc]] = {}
    for arc in arcs:
        by_source.setdefault(arc.iv, []).append(arc)

    found: list[frozenset[str]] = []
    path: list[str] = []
    visited: set[Hashable] = {source}

    def allowed(arc: Arc) -> bool:
        kinds = first_kinds if not path else rest_kinds
        return kinds is None or arc.kind in kinds

    def dfs(vertex: Hashable) -> None:
        for arc in by_source.get(vertex, ()):
            if arc.tv in visited or not allowed(arc):
                continue
            path.append(arc.name)
            if arc.tv == target:
                found.append(frozenset(path))
            else:
                visited.add(arc.tv)
                dfs(arc.tv)
                visited.remove(arc.tv)
            path.pop()

    dfs(source)
    return minimal_sets(found)
