"""JSON round-tripping for MAMA models.

Document layout:

.. code-block:: json

    {
      "name": "centralized",
      "components": [
        {"name": "proc1", "kind": "Proc"},
        {"name": "AppA", "kind": "AT", "processor": "proc1"},
        {"name": "ag1", "kind": "AGT", "processor": "proc1"},
        {"name": "m1", "kind": "MT", "processor": "proc5"}
      ],
      "connectors": [
        {"name": "c1", "kind": "AW", "source": "AppA", "target": "ag1"}
      ]
    }

``kind`` uses the paper's abbreviations (AT/AGT/MT/Proc and
AW/SW/Ntfy).  Loading validates role rules eagerly and whole-model
rules before returning.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SerializationError
from repro.mama.model import ComponentKind, ConnectorKind, MAMAModel


def mama_to_json(model: MAMAModel, *, indent: int | None = 2) -> str:
    """Serialise a MAMA model to a JSON string."""
    components = []
    for component in model.components.values():
        entry: dict[str, Any] = {
            "name": component.name,
            "kind": component.kind.value,
        }
        if component.processor is not None:
            entry["processor"] = component.processor
        components.append(entry)
    connectors = [
        {
            "name": connector.name,
            "kind": connector.kind.value,
            "source": connector.source,
            "target": connector.target,
        }
        for connector in model.connectors.values()
    ]
    return json.dumps(
        {"name": model.name, "components": components, "connectors": connectors},
        indent=indent,
    )


def _require(document: dict[str, Any], key: str, kind: type) -> Any:
    if key not in document:
        raise SerializationError(f"missing key {key!r} in MAMA document")
    value = document[key]
    if not isinstance(value, kind):
        raise SerializationError(
            f"key {key!r}: expected {kind.__name__}, got {type(value).__name__}"
        )
    return value


_ADDERS = {
    ComponentKind.APPLICATION_TASK: "add_application_task",
    ComponentKind.AGENT_TASK: "add_agent",
    ComponentKind.MANAGER_TASK: "add_manager",
}


def mama_from_json(text: str) -> MAMAModel:
    """Parse and validate a MAMA model from its JSON form.

    Raises
    ------
    SerializationError
        On malformed JSON or schema violations.
    ModelError
        If the document parses but describes an invalid architecture.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError("top-level JSON value must be an object")

    model = MAMAModel(name=str(document.get("name", "mama")))
    components = _require(document, "components", list)
    # Processors first so task components can reference them regardless
    # of document order.
    for item in components:
        kind = _parse_component_kind(_require(item, "kind", str))
        if kind is ComponentKind.PROCESSOR:
            model.add_processor(_require(item, "name", str))
    for item in components:
        kind = _parse_component_kind(_require(item, "kind", str))
        if kind is ComponentKind.PROCESSOR:
            continue
        adder = getattr(model, _ADDERS[kind])
        adder(
            _require(item, "name", str),
            processor=_require(item, "processor", str),
        )
    for item in _require(document, "connectors", list):
        kind = _parse_connector_kind(_require(item, "kind", str))
        name = _require(item, "name", str)
        source = _require(item, "source", str)
        target = _require(item, "target", str)
        if kind is ConnectorKind.ALIVE_WATCH:
            model.add_alive_watch(name, monitored=source, monitor=target)
        elif kind is ConnectorKind.STATUS_WATCH:
            model.add_status_watch(name, monitored=source, monitor=target)
        else:
            model.add_notify(name, notifier=source, subscriber=target)
    return model.validated()


def _parse_component_kind(label: str) -> ComponentKind:
    try:
        return ComponentKind(label)
    except ValueError:
        raise SerializationError(
            f"unknown component kind {label!r}; expected one of "
            f"{[k.value for k in ComponentKind]}"
        ) from None


def _parse_connector_kind(label: str) -> ConnectorKind:
    try:
        return ConnectorKind(label)
    except ValueError:
        raise SerializationError(
            f"unknown connector kind {label!r}; expected one of "
            f"{[k.value for k in ConnectorKind]}"
        ) from None
