"""Entity classes for MAMA models.

Components carry a *kind* (application task ``AT``, agent task ``AGT``,
manager task ``MT``, processor ``Proc``); task components name their
hosting processor.  Connectors carry a kind (alive-watch, status-watch,
notify) and are directed **in the direction of information flow**:

* watch connectors: ``source`` is the *monitored* component, ``target``
  the *monitor*;
* notify connectors: ``source`` is the *notifier*, ``target`` the
  *subscriber*.

Role restrictions from the paper (checked by
:func:`repro.mama.validation.validate_mama`):

* managers and agents may take any role;
* an application task may only be *monitored* or a *subscriber*;
* a processor may only be *monitored*, and only by an alive-watch
  connector (a ping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ModelError


class ComponentKind(Enum):
    """Component types of the MAMA notation (Figure 3)."""

    APPLICATION_TASK = "AT"
    AGENT_TASK = "AGT"
    MANAGER_TASK = "MT"
    PROCESSOR = "Proc"

    @property
    def is_task(self) -> bool:
        return self is not ComponentKind.PROCESSOR


class ConnectorKind(Enum):
    """Connector types of the MAMA notation (Figure 3)."""

    ALIVE_WATCH = "AW"
    STATUS_WATCH = "SW"
    NOTIFY = "Ntfy"

    @property
    def is_watch(self) -> bool:
        return self is not ConnectorKind.NOTIFY


@dataclass(frozen=True)
class Component:
    """A MAMA component.

    Parameters
    ----------
    name:
        Unique identifier within the model (shared namespace with
        connectors).
    kind:
        One of the four :class:`ComponentKind` values.
    processor:
        For task components, the name of the hosting processor
        component; must be ``None`` for processors.
    """

    name: str
    kind: ComponentKind
    processor: str | None = None

    def __post_init__(self) -> None:
        if self.kind is ComponentKind.PROCESSOR:
            if self.processor is not None:
                raise ModelError(
                    f"processor component {self.name!r} cannot itself have a processor"
                )
        elif self.processor is None:
            raise ModelError(f"task component {self.name!r} needs a hosting processor")


@dataclass(frozen=True)
class Connector:
    """A typed, directed connector between two components.

    ``source → target`` is the direction of information flow (monitored
    to monitor, notifier to subscriber).
    """

    name: str
    kind: ConnectorKind
    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ModelError(f"connector {self.name!r} connects a component to itself")


@dataclass
class MAMAModel:
    """A Model for Availability Management Architectures.

    Build with the ``add_*`` methods; they enforce name uniqueness,
    referential integrity and the per-connection role rules eagerly.
    Call :func:`repro.mama.validation.validate_mama` (or
    :meth:`validated`) for the whole-model rules (remote watchers must
    also watch the remote processor, no duplicate connectors, etc.).
    """

    name: str = "mama"
    components: dict[str, Component] = field(default_factory=dict)
    connectors: dict[str, Connector] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction

    def _check_fresh(self, name: str) -> None:
        if name in self.components:
            raise ModelError(f"name {name!r} already used by a component")
        if name in self.connectors:
            raise ModelError(f"name {name!r} already used by a connector")

    def add_processor(self, name: str) -> Component:
        """Register a processor component."""
        self._check_fresh(name)
        component = Component(name=name, kind=ComponentKind.PROCESSOR)
        self.components[name] = component
        return component

    def _add_task(self, name: str, kind: ComponentKind, processor: str) -> Component:
        self._check_fresh(name)
        host = self.components.get(processor)
        if host is None or host.kind is not ComponentKind.PROCESSOR:
            raise ModelError(
                f"component {name!r}: hosting processor {processor!r} "
                "is not a registered processor component"
            )
        component = Component(name=name, kind=kind, processor=processor)
        self.components[name] = component
        return component

    def add_application_task(self, name: str, *, processor: str) -> Component:
        """Register an application task component."""
        return self._add_task(name, ComponentKind.APPLICATION_TASK, processor)

    def add_agent(self, name: str, *, processor: str) -> Component:
        """Register an agent task component."""
        return self._add_task(name, ComponentKind.AGENT_TASK, processor)

    def add_manager(self, name: str, *, processor: str) -> Component:
        """Register a manager task component."""
        return self._add_task(name, ComponentKind.MANAGER_TASK, processor)

    def _add_connector(
        self, name: str, kind: ConnectorKind, source: str, target: str
    ) -> Connector:
        self._check_fresh(name)
        for endpoint in (source, target):
            if endpoint not in self.components:
                raise ModelError(
                    f"connector {name!r}: unknown component {endpoint!r}"
                )
        connector = Connector(name=name, kind=kind, source=source, target=target)
        self._check_roles(connector)
        self.connectors[name] = connector
        return connector

    def add_alive_watch(self, name: str, *, monitored: str, monitor: str) -> Connector:
        """Monitor receives crash/alive data about the monitored component."""
        return self._add_connector(name, ConnectorKind.ALIVE_WATCH, monitored, monitor)

    def add_status_watch(self, name: str, *, monitored: str, monitor: str) -> Connector:
        """Like alive-watch, but also relays status of other components."""
        return self._add_connector(name, ConnectorKind.STATUS_WATCH, monitored, monitor)

    def add_notify(self, name: str, *, notifier: str, subscriber: str) -> Connector:
        """Notifier pushes received status data to the subscriber."""
        return self._add_connector(name, ConnectorKind.NOTIFY, notifier, subscriber)

    def _check_roles(self, connector: Connector) -> None:
        """Per-connection role restrictions of §2C."""
        source = self.components[connector.source]
        target = self.components[connector.target]
        if connector.kind.is_watch:
            # source plays `monitored`, target plays `monitor`.
            if target.kind is ComponentKind.PROCESSOR:
                raise ModelError(
                    f"connector {connector.name!r}: a processor cannot be a monitor"
                )
            if target.kind is ComponentKind.APPLICATION_TASK:
                raise ModelError(
                    f"connector {connector.name!r}: an application task can only "
                    "be connected as monitored or subscriber, not as monitor"
                )
            if (
                source.kind is ComponentKind.PROCESSOR
                and connector.kind is not ConnectorKind.ALIVE_WATCH
            ):
                raise ModelError(
                    f"connector {connector.name!r}: a processor can only be "
                    "monitored through an alive-watch connector"
                )
        else:
            # source plays `notifier`, target plays `subscriber`.
            if ComponentKind.PROCESSOR in (source.kind, target.kind):
                raise ModelError(
                    f"connector {connector.name!r}: processors cannot take "
                    "notifier or subscriber roles"
                )
            if source.kind is ComponentKind.APPLICATION_TASK:
                raise ModelError(
                    f"connector {connector.name!r}: an application task cannot "
                    "be a notifier"
                )

    # ------------------------------------------------------------------
    # Queries

    def tasks(self) -> list[Component]:
        """All task components (application, agent, manager)."""
        return [c for c in self.components.values() if c.kind.is_task]

    def processors(self) -> list[Component]:
        """All processor components."""
        return [
            c for c in self.components.values() if c.kind is ComponentKind.PROCESSOR
        ]

    def tasks_on(self, processor: str) -> list[Component]:
        """Task components hosted on the named processor."""
        if processor not in self.components:
            raise ModelError(f"unknown component {processor!r}")
        return [c for c in self.tasks() if c.processor == processor]

    def watchers_of(self, component: str) -> list[Connector]:
        """Watch connectors whose monitored end is the named component."""
        return [
            c
            for c in self.connectors.values()
            if c.kind.is_watch and c.source == component
        ]

    def component_names(self) -> list[str]:
        """Names of every component (tasks then processors)."""
        return [c.name for c in self.tasks()] + [c.name for c in self.processors()]

    def validated(self) -> "MAMAModel":
        """Run full validation and return self (fluent helper)."""
        from repro.mama.validation import validate_mama

        validate_mama(self)
        return self
