"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-types distinguish the
phase in which a problem was detected:

* :class:`ModelError` — a model object is structurally invalid (duplicate
  names, dangling references, forbidden connector roles, request cycles).
* :class:`SolverError` — a numerical procedure failed (no convergence,
  singular generator, empty customer population where one is required).
* :class:`SerializationError` — malformed input while loading a model from
  its JSON form.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A model is structurally invalid.

    Raised by builders and validators when a model violates the
    well-formedness rules of the paper (e.g. an FTLQN request cycle, a
    processor connected in a role other than *monitored*, or an entry that
    references an unknown task).
    """


class SolverError(ReproError):
    """A numerical solver failed to produce a result."""


class ConvergenceError(SolverError):
    """An iterative solver exceeded its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last observed convergence residual.
    """

    def __init__(self, message: str, *, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SerializationError(ReproError):
    """A model file or JSON document could not be parsed into a model."""
