"""Fault-Tolerant Layered Queueing Networks (FTLQN).

The application-side model of the paper (§2, Figure 1): layered systems
of tasks with entries connected by blocking remote-procedure-call
requests, where a request may target a *service* — an indirection point
with priority-ordered alternative target entries (primary and backups).

* :mod:`repro.ftlqn.model` — the entity classes and :class:`FTLQNModel`.
* :mod:`repro.ftlqn.validation` — structural well-formedness checks.
* :mod:`repro.ftlqn.fault_graph` — the AND-OR fault propagation graph of
  §3 with Definition-1/Definition-2 evaluation (knowledge-gated
  reconfiguration and operational-configuration extraction).
* :mod:`repro.ftlqn.serialize` — JSON round-tripping.
* :mod:`repro.ftlqn.dot` — Graphviz export for models and fault graphs.
"""

from repro.ftlqn.model import (
    Entry,
    FTLQNModel,
    Link,
    Processor,
    Request,
    Service,
    Task,
)
from repro.ftlqn.fault_graph import (
    Evaluation,
    FaultNode,
    FaultPropagationGraph,
    NodeKind,
    PERFECT_KNOWLEDGE,
    build_fault_graph,
)
from repro.ftlqn.serialize import model_from_json, model_to_json
from repro.ftlqn.validation import validate_model

__all__ = [
    "Entry",
    "Evaluation",
    "FTLQNModel",
    "FaultNode",
    "FaultPropagationGraph",
    "Link",
    "NodeKind",
    "PERFECT_KNOWLEDGE",
    "Processor",
    "Request",
    "Service",
    "Task",
    "build_fault_graph",
    "model_from_json",
    "model_to_json",
    "validate_model",
]
