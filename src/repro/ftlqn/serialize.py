"""JSON round-tripping for FTLQN models.

The document layout is a direct transliteration of the entity classes:

.. code-block:: json

    {
      "name": "figure1",
      "processors": [{"name": "proc1", "multiplicity": 1}],
      "tasks": [{"name": "AppA", "processor": "proc1", "multiplicity": 1,
                 "is_reference": false, "think_time": 0.0}],
      "entries": [{"name": "eA", "task": "AppA", "demand": 1.0,
                   "requests": [{"target": "serviceA", "mean_calls": 1.0}]}],
      "services": [{"name": "serviceA", "targets": ["eA-1", "eA-2"]}]
    }

:func:`model_from_json` validates the reconstructed model before
returning it, so a loaded model is always well-formed.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SerializationError
from repro.ftlqn.model import FTLQNModel, Request


def model_to_json(model: FTLQNModel, *, indent: int | None = 2) -> str:
    """Serialise a model to a JSON string."""
    document = {
        "name": model.name,
        "processors": [
            {"name": p.name, "multiplicity": p.multiplicity}
            for p in model.processors.values()
        ],
        "links": [{"name": link.name} for link in model.links.values()],
        "tasks": [
            {
                "name": t.name,
                "processor": t.processor,
                "multiplicity": t.multiplicity,
                "is_reference": t.is_reference,
                "think_time": t.think_time,
            }
            for t in model.tasks.values()
        ],
        "entries": [
            {
                "name": e.name,
                "task": e.task,
                "demand": e.demand,
                "requests": [
                    {"target": r.target, "mean_calls": r.mean_calls}
                    for r in e.requests
                ],
                "depends_on": list(e.depends_on),
            }
            for e in model.entries.values()
        ],
        "services": [
            {"name": s.name, "targets": list(s.targets)}
            for s in model.services.values()
        ],
    }
    return json.dumps(document, indent=indent)


def _require(document: dict[str, Any], key: str, kind: type) -> Any:
    if key not in document:
        raise SerializationError(f"missing key {key!r} in FTLQN document")
    value = document[key]
    if not isinstance(value, kind):
        raise SerializationError(
            f"key {key!r}: expected {kind.__name__}, got {type(value).__name__}"
        )
    return value


def model_from_json(text: str) -> FTLQNModel:
    """Parse and validate a model from its JSON form.

    Raises
    ------
    SerializationError
        On malformed JSON or schema violations.
    ModelError
        If the document parses but describes an invalid model.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError("top-level JSON value must be an object")

    model = FTLQNModel(name=str(document.get("name", "ftlqn")))
    for item in _require(document, "processors", list):
        model.add_processor(
            _require(item, "name", str),
            multiplicity=int(item.get("multiplicity", 1)),
        )
    for item in document.get("links", []):
        model.add_link(_require(item, "name", str))
    for item in _require(document, "tasks", list):
        model.add_task(
            _require(item, "name", str),
            processor=_require(item, "processor", str),
            multiplicity=int(item.get("multiplicity", 1)),
            is_reference=bool(item.get("is_reference", False)),
            think_time=float(item.get("think_time", 0.0)),
        )
    for item in _require(document, "entries", list):
        requests = [
            Request(
                target=_require(r, "target", str),
                mean_calls=float(r.get("mean_calls", 1.0)),
            )
            for r in item.get("requests", [])
        ]
        model.add_entry(
            _require(item, "name", str),
            task=_require(item, "task", str),
            demand=float(item.get("demand", 0.0)),
            requests=requests,
            depends_on=[str(d) for d in item.get("depends_on", [])],
        )
    for item in _require(document, "services", list):
        model.add_service(
            _require(item, "name", str),
            targets=[str(t) for t in _require(item, "targets", list)],
        )
    return model.validated()
