"""Structural validation of FTLQN models.

Checks the global well-formedness rules that the ``add_*`` methods cannot
enforce locally:

* every request target resolves to an entry or a service;
* every service target resolves to an entry;
* the request graph (entry → entry, through services) is acyclic — the
  paper restricts the analysis to models with no cycles of requests,
  since cycles may deadlock under blocking RPC;
* reference tasks have at least one entry and are never called;
* non-reference tasks with entries are reachable from some reference
  task (dead code in the model is almost always a modelling mistake);
* a service is not targeted by entries of the task that owns one of its
  target entries (a server cannot arbitrate its own replacement).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel


def validate_model(model: FTLQNModel) -> None:
    """Raise :class:`~repro.errors.ModelError` on the first violation."""
    _check_references(model)
    _check_reference_tasks(model)
    _check_acyclic(model)
    _check_reachability(model)


def _check_references(model: FTLQNModel) -> None:
    for entry in model.entries.values():
        for request in entry.requests:
            if request.target not in model.entries and request.target not in model.services:
                raise ModelError(
                    f"entry {entry.name!r}: request target {request.target!r} "
                    "is neither an entry nor a service"
                )
            if request.target in model.entries:
                target_task = model.entries[request.target].task
                if target_task == entry.task:
                    raise ModelError(
                        f"entry {entry.name!r}: request to {request.target!r} "
                        "would be a blocking call to its own task (deadlock)"
                    )
    for service in model.services.values():
        for target in service.targets:
            if target not in model.entries:
                raise ModelError(
                    f"service {service.name!r}: target {target!r} is not an entry"
                )
    for entry in model.entries.values():
        for dependency in entry.depends_on:
            if dependency not in model.links:
                raise ModelError(
                    f"entry {entry.name!r}: dependency {dependency!r} "
                    "is not a registered link"
                )


def _check_reference_tasks(model: FTLQNModel) -> None:
    if not model.reference_tasks():
        raise ModelError("model has no reference (user) task to drive it")
    called_entries = set()
    for entry in model.entries.values():
        for request in entry.requests:
            if request.target in model.entries:
                called_entries.add(request.target)
    for service in model.services.values():
        called_entries.update(service.targets)

    for task in model.tasks.values():
        entries = model.entries_of_task(task.name)
        if task.is_reference:
            if not entries:
                raise ModelError(f"reference task {task.name!r} has no entries")
            for entry in entries:
                if entry.name in called_entries:
                    raise ModelError(
                        f"entry {entry.name!r} of reference task {task.name!r} "
                        "must not be called by other entries"
                    )


def _entry_successors(model: FTLQNModel, entry_name: str) -> list[str]:
    """Entry names directly callable from an entry (through services)."""
    successors: list[str] = []
    for request in model.entries[entry_name].requests:
        if request.target in model.entries:
            successors.append(request.target)
        else:
            successors.extend(model.services[request.target].targets)
    return successors


def _check_acyclic(model: FTLQNModel) -> None:
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in model.entries}

    def visit(name: str, trail: list[str]) -> None:
        colour[name] = GREY
        trail.append(name)
        for successor in _entry_successors(model, name):
            if colour[successor] == GREY:
                cycle = trail[trail.index(successor):] + [successor]
                raise ModelError(
                    "request cycle detected (may deadlock): " + " -> ".join(cycle)
                )
            if colour[successor] == WHITE:
                visit(successor, trail)
        trail.pop()
        colour[name] = BLACK

    for name in model.entries:
        if colour[name] == WHITE:
            visit(name, [])


def _check_reachability(model: FTLQNModel) -> None:
    reachable: set[str] = set()
    frontier: list[str] = []
    for task in model.reference_tasks():
        for entry in model.entries_of_task(task.name):
            frontier.append(entry.name)
            reachable.add(entry.name)
    while frontier:
        name = frontier.pop()
        for successor in _entry_successors(model, name):
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    for entry in model.entries.values():
        if entry.name not in reachable:
            raise ModelError(
                f"entry {entry.name!r} is unreachable from every reference task"
            )
