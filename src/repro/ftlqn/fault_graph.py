"""Fault propagation graphs (§3 of the paper).

The operational dependencies of an FTLQN model form an AND-OR graph:

* **leaf nodes** — one per application task and per processor;
* **entry nodes** (AND) — an entry works iff its task, its processor and
  everything it calls all work;
* **service nodes** (OR with priorities) — a service works iff some
  target entry works *and* the deciding task can actually select it
  (Definition 1): the deciding task must know the operational state of
  every component supporting the chosen target, and must know of the
  failure of every higher-priority target (knowing any one failed
  contributor of a target suffices to know that target failed);
* a **root node** (OR) over the reference-task entries.

:func:`build_fault_graph` derives the graph from a model;
:meth:`FaultPropagationGraph.evaluate` applies Definitions 1 and 2 to a
component up/down state under a knowledge predicate, yielding the
operational configuration in use (or ``None`` if the system failed).

The knowledge predicate has signature ``know(component, task) -> bool``
and is evaluated *in the same system state*; pass
:data:`PERFECT_KNOWLEDGE` to recover the idealised analysis of the
paper's earlier work [8, 10].
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from enum import Enum

from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel

#: Name of the synthetic root node added to every fault propagation graph.
ROOT = "__root__"

#: Knowledge predicate of the idealised analysis: every task instantly
#: knows the state of every component.
PERFECT_KNOWLEDGE: "KnowFn" = lambda component, task: True

KnowFn = Callable[[str, str], bool]


class NodeKind(Enum):
    """Role of a node in the AND-OR fault propagation graph."""

    TASK = "task"
    PROCESSOR = "processor"
    LINK = "link"
    ENTRY = "entry"
    SERVICE = "service"
    ROOT = "root"


@dataclass(frozen=True)
class FaultNode:
    """A node of the fault propagation graph.

    ``children`` are ordered; for service nodes the order is the priority
    order of the alternative targets (index 0 = primary).  ``decider`` is
    the task that selects among a service node's targets (t(s) in the
    paper) and is ``None`` for other node kinds.
    """

    name: str
    kind: NodeKind
    children: tuple[str, ...] = ()
    decider: str | None = None

    @property
    def is_leaf(self) -> bool:
        return self.kind in (NodeKind.TASK, NodeKind.PROCESSOR, NodeKind.LINK)


@dataclass(frozen=True)
class Evaluation:
    """Result of evaluating the graph in one system state.

    Attributes
    ----------
    working:
        Truth value of Definition 1 for every node name.
    selected:
        For each service node, the chosen target entry (or ``None`` when
        the service failed or could not reconfigure).
    configuration:
        Definition 2 — the frozenset of working, in-use entry and service
        node names; ``None`` when the system failed (root not working).
    """

    working: Mapping[str, bool]
    selected: Mapping[str, str | None]
    configuration: frozenset[str] | None

    @property
    def system_working(self) -> bool:
        return self.configuration is not None


class FaultPropagationGraph:
    """An AND-OR fault propagation graph with Definition-1 evaluation."""

    def __init__(self, nodes: Mapping[str, FaultNode]):
        if ROOT not in nodes:
            raise ModelError("fault propagation graph has no root node")
        self._nodes = dict(nodes)
        for node in self._nodes.values():
            for child in node.children:
                if child not in self._nodes:
                    raise ModelError(
                        f"node {node.name!r} references unknown child {child!r}"
                    )
        self._leaf_sets: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Structure queries

    @property
    def nodes(self) -> Mapping[str, FaultNode]:
        return self._nodes

    @property
    def root(self) -> FaultNode:
        return self._nodes[ROOT]

    def node(self, name: str) -> FaultNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ModelError(f"unknown fault-graph node {name!r}") from None

    def leaves(self) -> list[FaultNode]:
        """All leaf (task, processor and link) nodes."""
        return [node for node in self._nodes.values() if node.is_leaf]

    def service_nodes(self) -> list[FaultNode]:
        """All service (OR-with-priority) nodes."""
        return [n for n in self._nodes.values() if n.kind is NodeKind.SERVICE]

    def leaf_set(self, name: str) -> frozenset[str]:
        """L(n): the leaf nodes the named node depends on (memoised)."""
        cached = self._leaf_sets.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        if node.is_leaf:
            result = frozenset((name,))
        else:
            result = frozenset().union(
                *(self.leaf_set(child) for child in node.children)
            )
        self._leaf_sets[name] = result
        return result

    def required_know_pairs(self) -> list[tuple[str, str]]:
        """All (component, task) pairs whose ``know`` value Definition 1
        can consult: for each service node s, each leaf of L(s) paired
        with the deciding task t(s).  This is Step 3 of the paper's
        performability algorithm.
        """
        pairs: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for service in self.service_nodes():
            assert service.decider is not None
            for leaf in sorted(self.leaf_set(service.name)):
                pair = (leaf, service.decider)
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
        return pairs

    # ------------------------------------------------------------------
    # Definition 1 / Definition 2 evaluation

    def evaluate(self, state: Mapping[str, bool], know: KnowFn = PERFECT_KNOWLEDGE) -> Evaluation:
        """Evaluate the graph in one up/down state of the leaf components.

        Parameters
        ----------
        state:
            Maps every leaf (task and processor) name to True (up) or
            False (down).
        know:
            Knowledge predicate ``know(component, task)`` evaluated in
            this same state — typically the boolean know expressions of
            §4 partially evaluated at the state of the management
            components.
        """
        working: dict[str, bool] = {}
        selected: dict[str, str | None] = {}

        def is_working(name: str) -> bool:
            cached = working.get(name)
            if cached is not None:
                return cached
            node = self._nodes[name]
            if node.is_leaf:
                value = bool(state[name])
            elif node.kind is NodeKind.ENTRY:
                value = all(is_working(child) for child in node.children)
            elif node.kind is NodeKind.ROOT:
                value = any(is_working(child) for child in node.children)
            else:  # SERVICE
                value = select_target(node)
            working[name] = value
            return value

        def known_working(name: str, task: str) -> bool:
            node = self._nodes[name]
            if node.is_leaf:
                return bool(state[name]) and know(name, task)
            if node.kind is NodeKind.ENTRY:
                return is_working(name) and all(
                    known_working(child, task) for child in node.children
                )
            if node.kind is NodeKind.SERVICE:
                if not is_working(name):
                    return False
                target = selected[name]
                assert target is not None
                return known_working(target, task)
            raise ModelError(f"known_working undefined for node kind {node.kind}")

        def known_failed(name: str, task: str) -> bool:
            node = self._nodes[name]
            if node.is_leaf:
                return (not state[name]) and know(name, task)
            if is_working(name):
                return False
            if node.kind is NodeKind.ENTRY:
                # Knowing any one failed contributor suffices to conclude
                # the entry (an AND) has failed.
                return any(
                    not is_working(child) and known_failed(child, task)
                    for child in node.children
                )
            if node.kind is NodeKind.SERVICE:
                # To know an OR failed, every alternative must be known
                # failed.
                return all(known_failed(child, task) for child in node.children)
            raise ModelError(f"known_failed undefined for node kind {node.kind}")

        def select_target(node: FaultNode) -> bool:
            """Definition 1 for a service node; records the selection."""
            assert node.decider is not None
            decider = node.decider
            chosen: str | None = None
            for index, target in enumerate(node.children):
                if not is_working(target):
                    continue
                # target is the highest-priority operational alternative.
                selectable = known_working(target, decider) and all(
                    known_failed(node.children[j], decider) for j in range(index)
                )
                if selectable:
                    chosen = target
                break  # only the first operational target can be selected
            selected[node.name] = chosen
            return chosen is not None

        root_working = is_working(ROOT)
        # Force evaluation of every node so `working` is total.
        for name in self._nodes:
            is_working(name)

        configuration = self._extract_configuration(working, selected) if root_working else None
        return Evaluation(working=working, selected=selected, configuration=configuration)

    def _extract_configuration(
        self,
        working: Mapping[str, bool],
        selected: Mapping[str, str | None],
    ) -> frozenset[str]:
        """Definition 2: working non-leaf nodes in use by the system."""
        in_use: set[str] = set()
        stack: list[str] = [
            child for child in self.root.children if working[child]
        ]
        while stack:
            name = stack.pop()
            if name in in_use:
                continue
            node = self._nodes[name]
            if node.is_leaf:
                continue
            in_use.add(name)
            if node.kind is NodeKind.SERVICE:
                target = selected[name]
                if target is not None:
                    stack.append(target)
            else:  # ENTRY
                for child in node.children:
                    if not self._nodes[child].is_leaf:
                        stack.append(child)
        return frozenset(in_use)


def build_fault_graph(model: FTLQNModel) -> FaultPropagationGraph:
    """Transform an FTLQN model into its fault propagation graph (§3).

    Raises
    ------
    ModelError
        If a service is requested by entries of more than one task — the
        paper's t(s) (the deciding task of a service) must be unique.
    """
    model.validated()
    nodes: dict[str, FaultNode] = {}

    for task in model.tasks.values():
        nodes[task.name] = FaultNode(name=task.name, kind=NodeKind.TASK)
    for processor in model.processors.values():
        nodes[processor.name] = FaultNode(
            name=processor.name, kind=NodeKind.PROCESSOR
        )
    for link in model.links.values():
        nodes[link.name] = FaultNode(name=link.name, kind=NodeKind.LINK)

    for entry in model.entries.values():
        task = model.tasks[entry.task]
        children = [task.name, task.processor]
        children.extend(entry.depends_on)
        children.extend(request.target for request in entry.requests)
        nodes[entry.name] = FaultNode(
            name=entry.name, kind=NodeKind.ENTRY, children=tuple(children)
        )

    for service in model.services.values():
        callers = model.callers_of_service(service.name)
        decider_tasks = {caller.task for caller in callers}
        if not decider_tasks:
            raise ModelError(f"service {service.name!r} has no caller")
        if len(decider_tasks) > 1:
            raise ModelError(
                f"service {service.name!r} is requested by multiple tasks "
                f"{sorted(decider_tasks)}; the deciding task t(s) must be unique"
            )
        nodes[service.name] = FaultNode(
            name=service.name,
            kind=NodeKind.SERVICE,
            children=tuple(service.targets),
            decider=decider_tasks.pop(),
        )

    root_children = []
    for task in model.reference_tasks():
        root_children.extend(entry.name for entry in model.entries_of_task(task.name))
    if not root_children:
        raise ModelError("model has no reference-task entries to drive the root node")
    nodes[ROOT] = FaultNode(name=ROOT, kind=NodeKind.ROOT, children=tuple(root_children))

    return FaultPropagationGraph(nodes)
