"""Graphviz (DOT) export of FTLQN models and fault propagation graphs.

These functions return DOT source text; render it with any Graphviz
installation (``dot -Tpdf``).  They exist so users can visually compare a
model against the paper's Figure 1 and Figure 5 diagrams.
"""

from __future__ import annotations

from repro.ftlqn.fault_graph import ROOT, FaultPropagationGraph, NodeKind
from repro.ftlqn.model import FTLQNModel


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def model_to_dot(model: FTLQNModel) -> str:
    """DOT rendering of an FTLQN model, tasks clustered by processor."""
    lines = ["digraph ftlqn {", "  rankdir=TB;", "  node [fontsize=10];"]
    for processor in model.processors.values():
        lines.append(f"  subgraph cluster_{processor.name} {{")
        lines.append(f"    label={_quote(processor.name)};")
        for task in model.tasks.values():
            if task.processor != processor.name:
                continue
            shape = "box3d" if task.is_reference else "box"
            entry_names = ", ".join(
                entry.name for entry in model.entries_of_task(task.name)
            )
            label = f"{task.name}\\n[{entry_names}]" if entry_names else task.name
            lines.append(
                f"    {_quote(task.name)} [shape={shape}, label={_quote(label)}];"
            )
        lines.append("  }")
    for service in model.services.values():
        lines.append(f"  {_quote(service.name)} [shape=ellipse, style=dashed];")
    for entry in model.entries.values():
        source_task = entry.task
        for request in entry.requests:
            if request.target in model.entries:
                target = model.entries[request.target].task
                label = f"{entry.name} -> {request.target}"
                lines.append(
                    f"  {_quote(source_task)} -> {_quote(target)}"
                    f" [label={_quote(label)}];"
                )
            else:
                lines.append(
                    f"  {_quote(source_task)} -> {_quote(request.target)}"
                    f" [label={_quote(entry.name)}];"
                )
    for service in model.services.values():
        for priority, target in enumerate(service.targets, start=1):
            target_task = model.entries[target].task
            lines.append(
                f"  {_quote(service.name)} -> {_quote(target_task)}"
                f" [label={_quote(f'#{priority} {target}')}, style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines)


_SHAPES = {
    NodeKind.TASK: "box",
    NodeKind.PROCESSOR: "component",
    NodeKind.ENTRY: "ellipse",
    NodeKind.SERVICE: "diamond",
    NodeKind.ROOT: "point",
}


def fault_graph_to_dot(graph: FaultPropagationGraph) -> str:
    """DOT rendering of a fault propagation graph (compare Figure 5)."""
    lines = ["digraph fault_propagation {", "  rankdir=TB;", "  node [fontsize=10];"]
    for node in graph.nodes.values():
        label = "r" if node.name == ROOT else node.name
        lines.append(
            f"  {_quote(node.name)} [shape={_SHAPES[node.kind]}, label={_quote(label)}];"
        )
    for node in graph.nodes.values():
        priority_labels = node.kind is NodeKind.SERVICE
        for index, child in enumerate(node.children, start=1):
            attrs = f" [label={_quote(f'#{index}')}]" if priority_labels else ""
            lines.append(f"  {_quote(node.name)} -> {_quote(child)}{attrs};")
    lines.append("}")
    return "\n".join(lines)
