"""Entity classes for Fault-Tolerant Layered Queueing Network models.

An :class:`FTLQNModel` is a container of named entities:

* :class:`Processor` — a hardware node hosting tasks.
* :class:`Task` — an operating-system process with one or more
  :class:`Entry` service handlers.  *Reference* tasks model the user
  population (the paper's ``UserA``/``UserB`` groups): their entries are
  never called, they drive the system.
* :class:`Entry` — a service handler with a mean host execution demand,
  making synchronous (blocking RPC) :class:`Request`\\ s to other entries
  or to services.
* :class:`Service` — the paper's reconfiguration point: an abstraction
  with priority-ordered alternative target entries (priority 1 is the
  primary; higher numbers are backups used when earlier targets fail
  *and* the deciding task knows it).

Entities are created through the ``add_*`` methods of the model, which
enforce name uniqueness and referential integrity eagerly; global
properties (acyclicity, reference-task rules) are checked by
:func:`repro.ftlqn.validation.validate_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError


@dataclass(frozen=True)
class Processor:
    """A hardware node.

    Parameters
    ----------
    name:
        Unique identifier within the model.
    multiplicity:
        Number of identical CPUs sharing the dispatch queue (≥ 1).
    """

    name: str
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ModelError(f"processor {self.name!r}: multiplicity must be >= 1")


@dataclass(frozen=True)
class Link:
    """A network or infrastructure element entries can depend on.

    Links are pure reliability components: they carry no queueing
    demand, but when one fails every entry that ``depends_on`` it fails
    with it.  Use them for network segments, switches, shared volumes.
    """

    name: str


@dataclass(frozen=True)
class Task:
    """An operating-system process hosted on a processor.

    Parameters
    ----------
    name:
        Unique identifier within the model.
    processor:
        Name of the hosting :class:`Processor`.
    multiplicity:
        Number of identical threads (or, for a reference task, the user
        population size).
    is_reference:
        True for user/driver tasks that originate load and are not
        called by anyone.
    think_time:
        Mean delay between completing one cycle and starting the next
        (reference tasks only; seconds).
    """

    name: str
    processor: str
    multiplicity: int = 1
    is_reference: bool = False
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ModelError(f"task {self.name!r}: multiplicity must be >= 1")
        if self.think_time < 0:
            raise ModelError(f"task {self.name!r}: think_time must be >= 0")
        if self.think_time > 0 and not self.is_reference:
            raise ModelError(
                f"task {self.name!r}: think_time is only meaningful on reference tasks"
            )


@dataclass(frozen=True)
class Request:
    """A synchronous call made by an entry.

    ``target`` names either an :class:`Entry` or a :class:`Service`;
    ``mean_calls`` is the mean number of such calls per invocation of the
    source entry.
    """

    target: str
    mean_calls: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_calls <= 0:
            raise ModelError(
                f"request to {self.target!r}: mean_calls must be positive"
            )


@dataclass(frozen=True)
class Entry:
    """A service handler embedded in a task.

    Parameters
    ----------
    name:
        Unique identifier within the model.
    task:
        Name of the owning :class:`Task`.
    demand:
        Mean total host execution demand per invocation (seconds).
    requests:
        Synchronous requests made per invocation.
    depends_on:
        Names of :class:`Link` components (network segments, shared
        storage, …) that must be operational for this entry to work.
        The paper notes that "network components are easily included";
        this is how — each dependency becomes one more leaf under the
        entry's AND node in the fault propagation graph.
    """

    name: str
    task: str
    demand: float = 0.0
    requests: tuple[Request, ...] = ()
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ModelError(f"entry {self.name!r}: demand must be >= 0")
        targets = [request.target for request in self.requests]
        if len(set(targets)) != len(targets):
            raise ModelError(f"entry {self.name!r}: duplicate request targets")
        if len(set(self.depends_on)) != len(self.depends_on):
            raise ModelError(f"entry {self.name!r}: duplicate dependencies")


@dataclass(frozen=True)
class Service:
    """A reconfiguration point with priority-ordered alternative targets.

    Parameters
    ----------
    name:
        Unique identifier within the model.
    targets:
        Entry names in priority order — index 0 is the ``#1`` (primary)
        target, index 1 the ``#2`` backup, and so on.
    """

    name: str
    targets: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise ModelError(f"service {self.name!r}: needs at least one target")
        if len(set(self.targets)) != len(self.targets):
            raise ModelError(f"service {self.name!r}: duplicate targets")


@dataclass
class FTLQNModel:
    """A Fault-Tolerant Layered Queueing Network model.

    Entities are registered through the ``add_*`` methods, which validate
    references eagerly (a task's processor must already exist, an entry's
    task must already exist).  Requests and service targets may be
    forward references; call
    :func:`repro.ftlqn.validation.validate_model` (or
    :meth:`validated`) once the model is complete.

    Example
    -------
    >>> model = FTLQNModel(name="demo")
    >>> _ = model.add_processor("p1")
    >>> _ = model.add_task("client", processor="p1", is_reference=True,
    ...                    multiplicity=10)
    >>> _ = model.add_task("server", processor="p1")
    >>> _ = model.add_entry("work", task="server", demand=0.01)
    >>> _ = model.add_entry("drive", task="client",
    ...                     requests=[Request("work")])
    >>> model.validated() is model
    True
    """

    name: str = "ftlqn"
    processors: dict[str, Processor] = field(default_factory=dict)
    links: dict[str, Link] = field(default_factory=dict)
    tasks: dict[str, Task] = field(default_factory=dict)
    entries: dict[str, Entry] = field(default_factory=dict)
    services: dict[str, Service] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction

    def _check_fresh(self, name: str) -> None:
        for kind, table in (
            ("processor", self.processors),
            ("link", self.links),
            ("task", self.tasks),
            ("entry", self.entries),
            ("service", self.services),
        ):
            if name in table:
                raise ModelError(f"name {name!r} already used by a {kind}")

    def add_processor(self, name: str, *, multiplicity: int = 1) -> Processor:
        """Register a processor and return it."""
        self._check_fresh(name)
        processor = Processor(name=name, multiplicity=multiplicity)
        self.processors[name] = processor
        return processor

    def add_link(self, name: str) -> Link:
        """Register a network/infrastructure link component."""
        self._check_fresh(name)
        link = Link(name=name)
        self.links[name] = link
        return link

    def add_task(
        self,
        name: str,
        *,
        processor: str,
        multiplicity: int = 1,
        is_reference: bool = False,
        think_time: float = 0.0,
    ) -> Task:
        """Register a task on an existing processor and return it."""
        self._check_fresh(name)
        if processor not in self.processors:
            raise ModelError(f"task {name!r}: unknown processor {processor!r}")
        task = Task(
            name=name,
            processor=processor,
            multiplicity=multiplicity,
            is_reference=is_reference,
            think_time=think_time,
        )
        self.tasks[name] = task
        return task

    def add_entry(
        self,
        name: str,
        *,
        task: str,
        demand: float = 0.0,
        requests: list[Request] | tuple[Request, ...] = (),
        depends_on: list[str] | tuple[str, ...] = (),
    ) -> Entry:
        """Register an entry on an existing task and return it.

        Request targets may reference entries or services that have not
        been added yet; they are resolved at validation time, as are
        the ``depends_on`` link names.
        """
        self._check_fresh(name)
        if task not in self.tasks:
            raise ModelError(f"entry {name!r}: unknown task {task!r}")
        entry = Entry(
            name=name,
            task=task,
            demand=demand,
            requests=tuple(requests),
            depends_on=tuple(depends_on),
        )
        self.entries[name] = entry
        return entry

    def add_service(self, name: str, *, targets: list[str] | tuple[str, ...]) -> Service:
        """Register a service with priority-ordered targets and return it."""
        self._check_fresh(name)
        service = Service(name=name, targets=tuple(targets))
        self.services[name] = service
        return service

    # ------------------------------------------------------------------
    # Queries

    def entries_of_task(self, task: str) -> list[Entry]:
        """All entries owned by the named task, in insertion order."""
        if task not in self.tasks:
            raise ModelError(f"unknown task {task!r}")
        return [entry for entry in self.entries.values() if entry.task == task]

    def reference_tasks(self) -> list[Task]:
        """All reference (user/driver) tasks, in insertion order."""
        return [task for task in self.tasks.values() if task.is_reference]

    def component_names(self) -> list[str]:
        """Names of all failure-bearing entities (tasks, processors, links)."""
        return list(self.tasks) + list(self.processors) + list(self.links)

    def owner_task_of(self, entry_or_service: str) -> Task:
        """The task hosting an entry (entries only — services have callers)."""
        entry = self.entries.get(entry_or_service)
        if entry is None:
            raise ModelError(f"unknown entry {entry_or_service!r}")
        return self.tasks[entry.task]

    def callers_of_service(self, service: str) -> list[Entry]:
        """Entries that request the named service."""
        if service not in self.services:
            raise ModelError(f"unknown service {service!r}")
        return [
            entry
            for entry in self.entries.values()
            if any(request.target == service for request in entry.requests)
        ]

    def validated(self) -> "FTLQNModel":
        """Run full validation and return self (fluent helper)."""
        from repro.ftlqn.validation import validate_model

        validate_model(self)
        return self
