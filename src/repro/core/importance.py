"""Component importance (sensitivity) analysis.

Which component's reliability should you improve first — a server, a
processor, an agent, or the manager itself?  For every unreliable
component *c* this module computes Birnbaum-style importance measures
by conditioning the full coverage-aware analysis on *c* being up or
down:

* **reward importance** — E[R | c up] − E[R | c down]: reward-rate at
  stake per unit of c's availability;
* **failure importance** — P(system failed | c down) −
  P(system failed | c up): the classical Birnbaum measure on the
  system-failure event;
* **improvement potential** — E[R | c up] − E[R]: the reward recovered
  by making c perfect.

Management components participate exactly like application components,
so the analysis directly answers the paper's motivating question of how
much the management architecture itself matters.

Every conditioned run shares one :class:`AnalysisStructure` (the fault
graph and ``know`` table depend only on the models, not on what is
pinned) and one LQN cache (a configuration's performance is independent
of probabilities), so the per-component cost is two state-space scans
and zero new LQN solves once the baseline has been evaluated.  The
scans dispatch over the parallel engine via ``jobs=`` and report into
``counters=``/``progress=`` like
:meth:`~repro.core.performability.PerformabilityAnalyzer.solve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, MutableMapping

from repro.core.dependency import CommonCause
from repro.core.enumeration import resolve_jobs
from repro.core.performability import (
    AnalysisStructure,
    PerformabilityAnalyzer,
    derive_structure,
)
from repro.core.progress import ProgressCallback, ScanCounters
from repro.core.rewards import RewardFunction
from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel
from repro.lqn.results import LQNResults
from repro.mama.model import MAMAModel


@dataclass(frozen=True)
class ImportanceRecord:
    """Importance measures for one component.

    ``reward_if_up`` / ``reward_if_down`` are expected reward rates of
    the system conditioned on the component state; the failure fields
    are the corresponding system-failure probabilities.
    """

    component: str
    reward_if_up: float
    reward_if_down: float
    failure_if_up: float
    failure_if_down: float
    baseline_reward: float

    @property
    def reward_importance(self) -> float:
        return self.reward_if_up - self.reward_if_down

    @property
    def failure_importance(self) -> float:
        return self.failure_if_down - self.failure_if_up

    @property
    def improvement_potential(self) -> float:
        return self.reward_if_up - self.baseline_reward


def importance_analysis(
    ftlqn: FTLQNModel,
    mama: MAMAModel | None,
    failure_probs: Mapping[str, float],
    *,
    reward: RewardFunction | None = None,
    components: Iterable[str] | None = None,
    common_causes: tuple[CommonCause, ...] = (),
    method: str = "factored",
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    counters: ScanCounters | None = None,
    structure: AnalysisStructure | None = None,
    lqn_cache: MutableMapping[frozenset[str], LQNResults] | None = None,
) -> list[ImportanceRecord]:
    """Birnbaum importance of every (or the given) unreliable component.

    Common-cause events participate too: conditioning an event "up"
    means it never fires, "down" that it has fired.  Returns records
    sorted by decreasing reward importance.

    One :class:`~repro.core.performability.AnalysisStructure` and one
    LQN cache are shared across the baseline and all conditioned runs
    (or injected via ``structure=``/``lqn_cache=``, e.g. a
    :class:`~repro.core.sweep.SweepEngine`'s caches during a
    design-space search), so conditioning only re-scans the state space.
    ``jobs`` sets the worker-process count per scan (``0`` = all
    cores), ``progress`` receives the usual per-phase events, and
    ``counters`` accumulates scan/LQN statistics across *all*
    conditioned runs.

    Raises
    ------
    ModelError
        If ``components`` names something without a (0, 1) failure
        probability — pinned or perfect components have no Birnbaum
        measure.
    """
    common_causes = tuple(common_causes)
    jobs = resolve_jobs(jobs)
    if counters is None:
        counters = ScanCounters()
    if structure is None:
        structure = derive_structure(ftlqn, mama)
    if lqn_cache is None:
        lqn_cache = {}

    def make_analyzer(
        probs: Mapping[str, float], causes: tuple[CommonCause, ...]
    ) -> PerformabilityAnalyzer:
        return PerformabilityAnalyzer(
            ftlqn, mama, failure_probs=probs, reward=reward,
            common_causes=causes, structure=structure, lqn_cache=lqn_cache,
        )

    baseline = make_analyzer(failure_probs, common_causes)
    unreliable = set(baseline.problem.app_components) | set(
        baseline.problem.mgmt_components
    )
    if components is None:
        targets = sorted(unreliable)
    else:
        targets = list(components)
        unknown = [name for name in targets if name not in unreliable]
        if unknown:
            raise ModelError(
                f"components {unknown} have no (0, 1) failure probability; "
                "importance is undefined for pinned or perfect components"
            )

    def expected_metrics(analyzer: PerformabilityAnalyzer) -> tuple[float, float]:
        """(expected reward, failure probability) over shared caches."""
        probabilities = analyzer.configuration_probabilities(
            method=method, jobs=jobs, progress=progress, counters=counters
        )
        result = analyzer.evaluate_probabilities(
            probabilities, method=method, jobs=jobs, progress=progress,
            counters=counters,
        )
        return result.expected_reward, result.failed_probability

    baseline_reward, _ = expected_metrics(baseline)

    event_names = {cause.name for cause in common_causes}

    def pinned_analyzer(component: str, pinned: float) -> PerformabilityAnalyzer:
        if component in event_names:
            causes = tuple(
                CommonCause(c.name, pinned, c.components)
                if c.name == component
                else c
                for c in common_causes
            )
            return make_analyzer(failure_probs, causes)
        probs = dict(failure_probs)
        probs[component] = pinned
        return make_analyzer(probs, common_causes)

    records = []
    for component in targets:
        conditioned: dict[str, tuple[float, float]] = {}
        for label, pinned in (("up", 0.0), ("down", 1.0)):
            conditioned[label] = expected_metrics(
                pinned_analyzer(component, pinned)
            )
        records.append(
            ImportanceRecord(
                component=component,
                reward_if_up=conditioned["up"][0],
                reward_if_down=conditioned["down"][0],
                failure_if_up=conditioned["up"][1],
                failure_if_down=conditioned["down"][1],
                baseline_reward=baseline_reward,
            )
        )
    records.sort(key=lambda r: (-r.reward_importance, r.component))
    return records
