"""The end-to-end performability algorithm of §5.

:class:`PerformabilityAnalyzer` composes the substrates:

FTLQN model → fault propagation graph (§3)
MAMA model → knowledge propagation graph → ``know`` expressions (§4)
state-space scan (enumerative §5 or factored §7) → configurations + probabilities
configuration → ordinary LQN → solver → throughputs → reward (§5 step 5)
expected reward rate = Σ R_i · Prob(C_i) (§5 step 6)
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from collections.abc import Callable, Mapping, MutableMapping, Sequence

from repro.booleans.expr import Expr, Var, all_of
from repro.core.configuration import configuration_to_lqn
from repro.core.dependency import CommonCause
from repro.core.enumeration import (
    StateSpaceProblem,
    enumerate_configurations,
    normalize_method,
    resolve_jobs,
)
from repro.core.bounded import (
    DEFAULT_EPSILON,
    bounded_configurations,
    nominal_configuration,
)
from repro.core.factored import factored_configurations
from repro.core.kernel import bitset_configurations
from repro.core.symbolic import bdd_configurations
from repro.core.progress import (
    ProgressCallback,
    ProgressReporter,
    ScanCounters,
)
from repro.core.results import ConfigurationRecord, PerformabilityResult
from repro.core.rewards import RewardFunction, weighted_throughput_reward
from repro.errors import ModelError
from repro.ftlqn.fault_graph import build_fault_graph
from repro.ftlqn.model import FTLQNModel
from repro.lqn.results import LQNResults, WarmStart
from repro.lqn.solver import solve_lqn_batch
from repro.mama.knowledge import KnowledgeGraph
from repro.mama.model import ComponentKind, MAMAModel


class WarmStartIndex:
    """Nearest-neighbour warm-start index over an LQN cache.

    Wraps a configuration → :class:`~repro.lqn.results.LQNResults`
    mapping (typically a :class:`~repro.core.sweep.SweepEngine`'s
    shared cache) and serves, for a configuration about to be solved,
    the waiting-time estimates of the *closest already-solved*
    configuration — closest by Hamming distance, i.e. the number of
    components present in one configuration but not the other.  Ties
    break on the sorted component tuple so the answer is independent
    of cache insertion order.

    Warm starts trade bit-reproducibility for speed: the solver still
    converges to the same fixed point within its tolerance, but the
    iterate path (and the last ~1e-8 of the result) depends on which
    configurations happen to be cached.  They are therefore strictly
    opt-in (``SweepEngine(lqn_warm_start=True)`` / ``--warm-start``).
    """

    def __init__(
        self, cache: Mapping[frozenset[str], LQNResults]
    ) -> None:
        self._cache = cache

    def nearest(
        self, configuration: frozenset[str]
    ) -> tuple[WarmStart | None, int]:
        """The best available seed and its Hamming distance.

        Returns ``(None, 0)`` when the cache holds no reusable entry.
        """
        best: WarmStart | None = None
        best_key: tuple[int, tuple[str, ...]] | None = None
        for cached, results in self._cache.items():
            if results.warm_start is None:
                continue
            key = (len(configuration ^ cached), tuple(sorted(cached)))
            if best_key is None or key < best_key:
                best_key = key
                best = results.warm_start
        if best is None or best_key is None:
            return None, 0
        return best, best_key[0]


#: Signature of an injectable batched LQN solver: a list of ordinary
#: LQN models plus optional per-model warm-start seeds in, one
#: :class:`LQNResults` per model (same order) out.  The default is
#: :func:`repro.lqn.solver.solve_lqn_batch`; the analysis service
#: injects its micro-batching queue here so concurrent requests
#: coalesce into fewer, larger batched solves.
BatchSolver = Callable[
    [Sequence[object], Sequence[WarmStart | None] | None],
    list[LQNResults],
]


def _solve_direct(models, warm_starts):
    return solve_lqn_batch(models, warm_starts=warm_starts)


class LQNCoordinator:
    """Single-flight gate over a shared configuration → LQN cache.

    Concurrent analyzers (the sweep engine under the analysis service's
    thread pool) share one LQN cache; without coordination two threads
    that miss on the same configuration would both solve it — wasted
    work, and a lost-update on the cache-hit counters.  The coordinator
    closes that window: a thread *claims* the configurations it will
    solve by publishing an in-flight latch under the lock, solves every
    claim in **one** batched call (preserving the PR-8 batching win
    across concurrent requests), then publishes the results and
    releases the latches.  A thread that finds a configuration already
    claimed simply waits on the claimant's latch and reads the cache —
    so across all threads each distinct configuration is solved exactly
    once, and per-thread ``solved_now`` sets stay disjoint (coherent
    ``lqn_solves``/``lqn_cache_hits`` accounting).

    Single-threaded behaviour is bit-identical to the historical inline
    batch solve: every missing configuration is claimed, models are
    built in the same order, and the same ``solve_lqn_batch`` call is
    issued (batched solves are bitwise-equal to sequential ones).

    Parameters
    ----------
    ftlqn:
        The layered model whose configurations are being solved.
    cache:
        The shared configuration → :class:`LQNResults` mapping; a fresh
        dict when omitted.  All mutation happens under the internal
        lock.
    solver:
        Optional :data:`BatchSolver` override (micro-batching, custom
        tolerances).  Defaults to :func:`solve_lqn_batch`.
    """

    def __init__(
        self,
        ftlqn: FTLQNModel,
        cache: MutableMapping[frozenset[str], LQNResults] | None = None,
        *,
        solver: BatchSolver | None = None,
    ) -> None:
        self._ftlqn = ftlqn
        self._cache = cache if cache is not None else {}
        self._solver = solver or _solve_direct
        self._lock = threading.Lock()
        self._inflight: dict[frozenset[str], threading.Event] = {}

    @property
    def cache(self) -> MutableMapping[frozenset[str], LQNResults]:
        """The shared configuration → LQN-results mapping."""
        return self._cache

    def ensure(
        self,
        configurations: Sequence[frozenset[str]],
        *,
        counters: ScanCounters | None = None,
        warm_index: WarmStartIndex | None = None,
    ) -> set[frozenset[str]]:
        """Make every configuration present in the cache.

        ``configurations`` must not contain duplicates (callers pass
        the missing keys of a probability mapping, which are unique).
        Returns the subset this call actually solved — configurations
        claimed by concurrent peers are waited for instead and are
        *not* in the returned set, so callers can keep attributing
        cache hits and fresh solves exactly.
        """
        claimed: list[frozenset[str]] = []
        waiting: list[tuple[frozenset[str], threading.Event]] = []
        seeds: list[WarmStart | None] | None = None
        with self._lock:
            for configuration in configurations:
                if configuration in self._cache:
                    continue
                latch = self._inflight.get(configuration)
                if latch is None:
                    self._inflight[configuration] = threading.Event()
                    claimed.append(configuration)
                else:
                    waiting.append((configuration, latch))
            if claimed and warm_index is not None:
                # Under the lock: ``nearest`` iterates the cache, which
                # concurrent claimants mutate under this same lock.
                seeds = []
                for configuration in claimed:
                    seed, distance = warm_index.nearest(configuration)
                    if seed is not None and counters is not None:
                        counters.lqn_warm_starts += 1
                        counters.lqn_warm_distance += distance
                    seeds.append(seed)
        solved: set[frozenset[str]] = set()
        if claimed:
            try:
                batch = self._solver(
                    [
                        configuration_to_lqn(self._ftlqn, configuration)
                        for configuration in claimed
                    ],
                    seeds,
                )
                with self._lock:
                    for configuration, results in zip(claimed, batch):
                        self._cache[configuration] = results
            finally:
                # Release the latches even on solver failure so waiting
                # peers can re-claim instead of blocking forever.
                with self._lock:
                    for configuration in claimed:
                        latch = self._inflight.pop(configuration, None)
                        if latch is not None:
                            latch.set()
            if counters is not None:
                counters.record_level("lqn_batch_max", len(claimed))
            solved.update(claimed)
        for _configuration, latch in waiting:
            latch.wait()
        # A peer whose solver raised released its latches without
        # publishing results; claim the leftovers ourselves (its error
        # surfaces on its own thread, not here).
        retry = [
            configuration
            for configuration, _latch in waiting
            if configuration not in self._cache
        ]
        if retry:
            solved |= self.ensure(
                retry, counters=counters, warm_index=warm_index
            )
        return solved


@dataclass(frozen=True)
class AnalysisStructure:
    """Everything the analysis derives from the *structure* of an
    (FTLQN, MAMA) pair alone — independent of failure probabilities,
    common causes and rewards.

    Deriving this is the expensive, probability-free part of
    :class:`PerformabilityAnalyzer` construction (fault-graph walk plus
    one ``know``-expression derivation per required (component, task)
    pair).  :func:`derive_structure` builds it; a sweep over many
    probability scenarios derives it once per architecture and passes
    it to every per-point analyzer via the ``structure=`` argument.

    Attributes
    ----------
    graph:
        The fault propagation graph of the FTLQN model.
    know_exprs:
        Base ``know[c, t]`` expressions keyed by (component, task);
        empty for the perfect-knowledge analysis.  Treat as immutable —
        analyzers copy it before rewriting for common causes.
    mama_names / connector_names:
        Component and connector names of the MAMA model (empty sets
        when there is none).
    """

    graph: object
    know_exprs: Mapping[tuple[str, str], Expr]
    mama_names: frozenset[str]
    connector_names: frozenset[str]

    @property
    def perfect(self) -> bool:
        """True when derived without a MAMA model."""
        return not self.mama_names


def derive_structure(
    ftlqn: FTLQNModel, mama: MAMAModel | None
) -> AnalysisStructure:
    """Derive the probability-independent analysis structure.

    Validates the FTLQN model, builds its fault propagation graph and,
    when a MAMA model is given, checks cross-model name consistency and
    derives the ``know`` expression table for every (component, task)
    pair the reconfiguration decisions need.
    """
    ftlqn.validated()
    graph = build_fault_graph(ftlqn)
    ftlqn_names = set(ftlqn.component_names())
    know_exprs: dict[tuple[str, str], Expr] = {}
    mama_names: set[str] = set()
    connector_names: set[str] = set()

    if mama is not None:
        _check_cross_model_names(ftlqn, mama, ftlqn_names)
        knowledge = KnowledgeGraph(mama)
        pairs = graph.required_know_pairs()
        missing = sorted({c for c, _ in pairs if c not in mama.components})
        if missing:
            raise ModelError(
                "the MAMA model does not cover the components "
                f"{missing}, whose state the reconfiguration decisions "
                "need (they support a service target).  Add them to "
                "the architecture — links and processors as "
                "alive-watched processor-kind components, tasks as "
                "monitored application tasks."
            )
        know_exprs = dict(knowledge.know_table(pairs))
        mama_names = set(mama.components)
        connector_names = set(mama.connectors)

    return AnalysisStructure(
        graph=graph,
        know_exprs=know_exprs,
        mama_names=frozenset(mama_names),
        connector_names=frozenset(connector_names),
    )


def _check_cross_model_names(
    ftlqn: FTLQNModel, mama: MAMAModel, ftlqn_names: set[str]
) -> None:
    for component in mama.components.values():
        if component.kind is ComponentKind.APPLICATION_TASK:
            if component.name not in ftlqn.tasks:
                raise ModelError(
                    f"MAMA application task {component.name!r} does not "
                    "exist in the FTLQN model"
                )
            expected = ftlqn.tasks[component.name].processor
            if component.processor != expected:
                raise ModelError(
                    f"MAMA places {component.name!r} on "
                    f"{component.processor!r} but the FTLQN model hosts "
                    f"it on {expected!r}"
                )
    for connector in mama.connectors:
        if connector in ftlqn_names:
            raise ModelError(
                f"MAMA connector name {connector!r} collides with an "
                "FTLQN component name"
            )


class PerformabilityAnalyzer:
    """Coverage-aware performability of a layered system.

    Parameters
    ----------
    ftlqn:
        The layered application model.
    mama:
        The fault-management architecture; ``None`` analyses the
        idealised perfect-knowledge system of [8, 10].
    failure_probs:
        Steady-state failure probability per component name (tasks,
        processors — application and management — and, optionally,
        MAMA connectors).  Names absent from the mapping are perfectly
        reliable.  A probability of 1.0 pins a component down (useful
        for what-if analyses).
    reward:
        Reward function for operational configurations; defaults to the
        unweighted sum of user-group throughputs.  The failed
        configuration always has reward 0.
    common_causes:
        Optional shared failure modes (see
        :class:`repro.core.dependency.CommonCause`): each event is an
        extra independent variable taking down all its components at
        once, in both the application and the knowledge analysis.
    structure:
        Optional precomputed :class:`AnalysisStructure` for this exact
        (ftlqn, mama) pair, as returned by :func:`derive_structure`.
        Passing it skips the fault-graph and ``know``-table derivation;
        sweeps over many probability scenarios share one per
        architecture.  The caller is responsible for it matching the
        models.
    lqn_cache:
        Optional external configuration → :class:`LQNResults` mapping
        used as the analyzer's LQN cache.  Sharing one mutable mapping
        between analyzers of the *same* FTLQN model de-duplicates LQN
        solves across them (a configuration's performance is
        independent of failure probabilities).  Default: a private
        per-analyzer dict.
    warm_index:
        Optional :class:`WarmStartIndex` consulted for waiting-time
        seeds before solving uncached configurations.  Opt-in: warm
        starts make the last ~1e-8 of each solve depend on cache
        history (see the class docstring), so sweeps only pass one
        when explicitly enabled.
    lqn_solver:
        Optional :data:`BatchSolver` replacing
        :func:`~repro.lqn.solver.solve_lqn_batch` for the batched LQN
        phase (the analysis service injects its micro-batching queue).
        Ignored when ``lqn_coordinator`` is given — the coordinator
        already carries a solver.
    lqn_coordinator:
        Optional shared :class:`LQNCoordinator`.  When given it
        supersedes ``lqn_cache`` (the analyzer adopts the
        coordinator's cache) and makes concurrent analyzers over the
        same model solve each distinct configuration exactly once.

    Example
    -------
    See ``examples/quickstart.py`` for a complete walk-through on the
    paper's Figure 1 system.
    """

    def __init__(
        self,
        ftlqn: FTLQNModel,
        mama: MAMAModel | None = None,
        *,
        failure_probs: Mapping[str, float] | None = None,
        reward: RewardFunction | None = None,
        common_causes: list[CommonCause] | tuple[CommonCause, ...] = (),
        structure: AnalysisStructure | None = None,
        lqn_cache: MutableMapping[frozenset[str], LQNResults] | None = None,
        warm_index: WarmStartIndex | None = None,
        lqn_solver: BatchSolver | None = None,
        lqn_coordinator: LQNCoordinator | None = None,
    ):
        self._ftlqn = ftlqn
        self._mama = mama
        self._common_causes = tuple(common_causes)
        self._failure_probs = dict(failure_probs or {})
        for name, probability in self._failure_probs.items():
            if not 0.0 <= probability <= 1.0:
                raise ModelError(
                    f"failure probability of {name!r} must be in [0, 1], "
                    f"got {probability}"
                )
        if structure is None:
            structure = derive_structure(ftlqn, mama)
        self._structure = structure
        self._graph = structure.graph
        if reward is None:
            reward = weighted_throughput_reward(
                {task.name: 1.0 for task in ftlqn.reference_tasks()}
            )
        self._reward = reward
        self._problem = self._build_problem()
        if lqn_coordinator is not None:
            self._coordinator = lqn_coordinator
            self._lqn_cache = lqn_coordinator.cache
        else:
            self._lqn_cache = lqn_cache if lqn_cache is not None else {}
            self._coordinator = LQNCoordinator(
                ftlqn, self._lqn_cache, solver=lqn_solver
            )
        self._warm_index = warm_index

    # ------------------------------------------------------------------

    @property
    def fault_graph(self):
        """The derived fault propagation graph."""
        return self._graph

    @property
    def problem(self) -> StateSpaceProblem:
        """The prepared state-space problem (for inspection/testing)."""
        return self._problem

    @property
    def structure(self) -> AnalysisStructure:
        """The probability-independent analysis structure."""
        return self._structure

    @property
    def lqn_cache(self) -> MutableMapping[frozenset[str], LQNResults]:
        """The configuration → LQN-results cache (shared if injected)."""
        return self._lqn_cache

    def _build_problem(self) -> StateSpaceProblem:
        ftlqn_names = set(self._ftlqn.component_names())
        # Copy the base table: common-cause resolution rewrites entries
        # in place and the structure may be shared across analyzers.
        know_exprs: dict[tuple[str, str], Expr] = dict(
            self._structure.know_exprs
        )
        mama_names = set(self._structure.mama_names)
        connector_names = set(self._structure.connector_names)

        universe = ftlqn_names | mama_names | connector_names
        unknown = [
            name for name in self._failure_probs if name not in universe
        ]
        if unknown:
            raise ModelError(
                f"failure_probs mention unknown components: {sorted(unknown)}"
            )

        cause_probability, leaf_causes, app_events, mgmt_events = (
            self._resolve_common_causes(universe, ftlqn_names, know_exprs)
        )

        app_components: list[str] = []
        mgmt_components: list[str] = []
        fixed_up: set[str] = set()
        fixed_down: set[str] = set()
        up_probability: dict[str, float] = {}

        for name in sorted(universe):
            p_fail = self._failure_probs.get(name, 0.0)
            if p_fail == 0.0:
                fixed_up.add(name)
            elif p_fail == 1.0:
                fixed_down.add(name)
            else:
                up_probability[name] = 1.0 - p_fail
                if name in ftlqn_names:
                    app_components.append(name)
                else:
                    mgmt_components.append(name)

        for name, p_occur in cause_probability.items():
            if p_occur == 0.0:
                fixed_up.add(name)
            elif p_occur == 1.0:
                fixed_down.add(name)
            else:
                up_probability[name] = 1.0 - p_occur
                if name in app_events:
                    app_components.append(name)
                else:
                    mgmt_components.append(name)

        return StateSpaceProblem(
            graph=self._graph,
            know_exprs=know_exprs,
            perfect=self._mama is None,
            app_components=tuple(app_components),
            mgmt_components=tuple(mgmt_components),
            fixed_up=frozenset(fixed_up),
            fixed_down=frozenset(fixed_down),
            up_probability=up_probability,
            leaf_causes=leaf_causes,
        )

    def _resolve_common_causes(
        self,
        universe: set[str],
        ftlqn_names: set[str],
        know_exprs: dict[tuple[str, str], Expr],
    ) -> tuple[dict[str, float], dict[str, tuple[str, ...]], set[str], set[str]]:
        """Validate common causes, rewrite know expressions, and return
        (event probability, leaf->events, app-side events, mgmt-side
        events).

        An event covering any application (fault-graph) component must be
        enumerated on the application side so that
        :meth:`StateSpaceProblem.leaf_state` can see it; pure-management
        events stay on the management side where the factored evaluator
        handles them symbolically.
        """
        cause_probability: dict[str, float] = {}
        component_events: dict[str, list[str]] = {}
        app_events: set[str] = set()
        mgmt_events: set[str] = set()

        for cause in self._common_causes:
            if cause.name in universe or cause.name in cause_probability:
                raise ModelError(
                    f"common cause name {cause.name!r} collides with an "
                    "existing component, connector or event"
                )
            missing = [c for c in cause.components if c not in universe]
            if missing:
                raise ModelError(
                    f"common cause {cause.name!r} affects unknown "
                    f"components: {sorted(missing)}"
                )
            cause_probability[cause.name] = cause.probability
            touches_application = False
            for component in cause.components:
                component_events.setdefault(component, []).append(cause.name)
                if component in ftlqn_names:
                    touches_application = True
            (app_events if touches_application else mgmt_events).add(cause.name)

        if component_events and know_exprs:
            replacement = {
                component: all_of(
                    [Var(component)] + [Var(event) for event in events]
                )
                for component, events in component_events.items()
            }
            for pair, expr in know_exprs.items():
                know_exprs[pair] = expr.replace(replacement)

        leaf_names = {leaf.name for leaf in self._graph.leaves()}
        leaf_causes = {
            component: tuple(events)
            for component, events in component_events.items()
            if component in leaf_names
        }
        return cause_probability, leaf_causes, app_events, mgmt_events

    # ------------------------------------------------------------------

    def configuration_probabilities(
        self,
        *,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> dict[frozenset[str] | None, float]:
        """Step 4: distinct configurations and their probabilities.

        ``method`` is ``"factored"`` (default; exact, avoids
        enumerating management states), ``"enumeration"`` (the paper's
        literal 2^N scan; alias ``"interp"``), ``"bits"`` (the compiled
        bit-parallel kernel of :mod:`repro.core.kernel`), ``"bdd"``
        (exact symbolic evaluation, polynomial in diagram size — see
        :mod:`repro.core.symbolic`) or ``"bounded"`` (most-probable
        states first until leftover mass ≤ ``epsilon`` — see
        :mod:`repro.core.bounded`; the returned probabilities then sum
        to less than one and downstream reward evaluation reports a
        rigorous interval).  Unknown names raise
        :class:`~repro.errors.ModelError`.  ``jobs`` sets the number of
        worker processes for the scanning backends (``1`` = sequential,
        bit-for-bit the historical behaviour; ``0`` = all cores);
        ``epsilon`` is only read by ``"bounded"``; ``progress`` receives
        :class:`~repro.core.progress.ProgressEvent` notifications;
        ``counters`` collects scan statistics.
        """
        method = normalize_method(method)
        if method == "enumeration":
            return enumerate_configurations(
                self._problem, jobs=jobs, progress=progress, counters=counters
            )
        if method == "bits":
            return bitset_configurations(
                self._problem, jobs=jobs, progress=progress, counters=counters
            )
        if method == "bdd":
            return bdd_configurations(
                self._problem, jobs=jobs, progress=progress, counters=counters
            )
        if method == "bounded":
            return bounded_configurations(
                self._problem, epsilon=epsilon, jobs=jobs, progress=progress,
                counters=counters,
            )
        return factored_configurations(
            self._problem, jobs=jobs, progress=progress, counters=counters
        )

    def performance_of(self, configuration: frozenset[str]) -> LQNResults:
        """Step 5: solve the LQN of one configuration (cached).

        Cache misses route through the shared
        :class:`LQNCoordinator` as a batch of one — bitwise-equal to a
        direct :func:`~repro.lqn.solver.solve_lqn` call, and safe when
        another thread is solving the same configuration.  (No warm
        seeds here, matching the historical cold single solve.)
        """
        cached = self._lqn_cache.get(configuration)
        if cached is None:
            self._coordinator.ensure([configuration])
            cached = self._lqn_cache[configuration]
        return cached

    def solve(
        self,
        *,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
    ) -> PerformabilityResult:
        """Run the full §5 algorithm and return the result.

        ``jobs``, ``epsilon`` and ``progress`` are forwarded to the
        state-space scan (see :meth:`configuration_probabilities`); the
        per-configuration LQN phase additionally reports progress under
        phase ``"lqn"``.  The returned result carries the filled
        :class:`~repro.core.progress.ScanCounters` as ``counters`` and
        the resolved worker count as ``jobs``.  With
        ``method="bounded"`` the result additionally carries the
        rigorous reward interval (``reward_interval``,
        ``unexplored_probability``).
        """
        method = normalize_method(method)
        jobs = resolve_jobs(jobs)
        counters = ScanCounters()
        probabilities = self.configuration_probabilities(
            method=method, jobs=jobs, epsilon=epsilon, progress=progress,
            counters=counters,
        )
        return self.evaluate_probabilities(
            probabilities, method=method, jobs=jobs, progress=progress,
            counters=counters,
        )

    def evaluate_probabilities(
        self,
        probabilities: Mapping[frozenset[str] | None, float],
        *,
        method: str = "factored",
        jobs: int = 1,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> PerformabilityResult:
        """Steps 5–6 given precomputed configuration probabilities.

        Runs one (cached) LQN solve per operational configuration,
        attaches rewards and folds the expected steady-state reward
        rate.  :meth:`solve` is ``configuration_probabilities`` followed
        by this method; sweeps that reuse a scan result across points
        (e.g. a pure reward-weight sweep) call it directly.

        ``probabilities`` is consumed in iteration order, which fixes
        the floating-point summation order of the expected reward —
        feeding the same mapping twice gives bit-identical results.
        Unconverged LQN solutions are folded in as-is, but counted in
        ``counters.lqn_unconverged`` and flagged on their
        :class:`~repro.core.results.ConfigurationRecord`.

        With ``method="bounded"`` the probabilities are allowed to sum
        to less than one; the deficit is reported as
        ``unexplored_probability`` and the result carries a rigorous
        reward interval: the lower bound counts every unexplored state
        at reward 0, the upper bound at ``R_max = max(rewards seen,
        nominal all-up configuration's reward)``.  Both bounds assume
        the reward function is non-negative and maximised by the
        nominal configuration — true of the default throughput-weighted
        rewards, where degraded configurations can only lose capacity.
        """
        method = normalize_method(method)
        if counters is None:
            counters = ScanCounters()
        reporter = ProgressReporter(progress)

        records: list[ConfigurationRecord] = []
        expected = 0.0
        reference_names = [t.name for t in self._ftlqn.reference_tasks()]
        lqn_started = time.perf_counter()
        # Solve every uncached configuration in one batched layered
        # solve (bit-identical to sequential per-configuration solves;
        # see solve_lqn_batch), going through the single-flight
        # coordinator so concurrent analyzers sharing this cache solve
        # each configuration exactly once.  Cache hits are counted
        # against the cache state *before* this call; configurations a
        # peer solved while we waited count as hits, keeping
        # lqn_solves + lqn_cache_hits coherent across threads.
        missing = [
            configuration
            for configuration in probabilities
            if configuration is not None
            and configuration not in self._lqn_cache
        ]
        solved_now: set[frozenset[str]] = set()
        if missing:
            solved_now = self._coordinator.ensure(
                missing, counters=counters, warm_index=self._warm_index
            )
        solved = 0
        for configuration, probability in probabilities.items():
            solved += 1
            reporter.emit("lqn", solved - 1, len(probabilities), counters)
            if configuration is None:
                records.append(
                    ConfigurationRecord(
                        configuration=None,
                        probability=probability,
                        reward=0.0,
                    )
                )
                continue
            if configuration in solved_now:
                counters.lqn_solves += 1
            else:
                counters.lqn_cache_hits += 1
            results = self.performance_of(configuration)
            if not results.converged:
                counters.lqn_unconverged += 1
            reward = self._reward(configuration, results)
            if not math.isfinite(reward):
                raise ModelError(
                    f"reward function returned {reward!r} for configuration "
                    f"{sorted(configuration)}"
                )
            throughputs = {
                name: results.task_throughputs.get(name, 0.0)
                for name in reference_names
            }
            records.append(
                ConfigurationRecord(
                    configuration=configuration,
                    probability=probability,
                    reward=reward,
                    throughputs=throughputs,
                    converged=results.converged,
                )
            )
            expected += probability * reward

        unexplored = 0.0
        reward_lower: float | None = None
        reward_upper: float | None = None
        if method == "bounded":
            unexplored = max(0.0, 1.0 - sum(probabilities.values()))
            reward_ceiling = max(
                (record.reward for record in records), default=0.0
            )
            nominal = nominal_configuration(self._problem)
            if nominal is not None:
                if nominal in self._lqn_cache:
                    counters.lqn_cache_hits += 1
                else:
                    counters.lqn_solves += 1
                reward_ceiling = max(
                    reward_ceiling,
                    self._reward(nominal, self.performance_of(nominal)),
                )
            reward_lower = expected
            reward_upper = expected + unexplored * reward_ceiling

        counters.lqn_seconds += time.perf_counter() - lqn_started
        reporter.emit(
            "lqn", len(probabilities), len(probabilities), counters,
            force=True,
        )
        records.sort(
            key=lambda r: (r.is_failed, -r.probability, r.label())
        )
        return PerformabilityResult(
            records=tuple(records),
            expected_reward=expected,
            state_count=self._problem.state_count,
            method=method,
            jobs=jobs,
            counters=counters,
            unexplored_probability=unexplored,
            reward_lower=reward_lower,
            reward_upper=reward_upper,
        )
