"""Temporal analysis mode: transient performability and coverage erosion.

The steady-state pipeline answers "what fraction of time, eventually";
this module wires the :mod:`repro.markov` layer into the same machinery
to answer the two temporal questions a fault-management architecture is
actually built for:

* **How does reward evolve after a clean start?**  Component
  failure/repair processes are independent 2-state chains, so the joint
  transient distribution is product form: starting all-up, component
  *c* is down at time *t* with probability
  ``u_c(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t})``.  The *exact* configuration
  probabilities at time *t* are therefore a static coverage scan at the
  time-indexed failure probabilities — no state-space blow-up, every
  scan backend (interp/factored/bits/bdd/bounded) works unchanged, and
  a shared :class:`~repro.core.sweep.SweepEngine` collapses the LQN
  work to one solve per *distinct configuration across the whole
  curve*.  The ``t → ∞`` point is evaluated at the exact steady-state
  unavailabilities, so it is bit-identical to the static analysis
  through the same engine.

* **What does detection latency cost?**  The §7 detection-delay
  Markov-reward model (:func:`repro.markov.detection
  .detection_delay_model`) yields an *erosion curve*: expected reward
  vs. mean detection latency, normalized by the instantaneous-detection
  baseline.  Combined multiplicatively with the time-integrated reward
  (the two effects are separable because knowledge latency is modeled
  under perfect knowledge, orthogonal to the coverage axis), this gives
  the latency-aware ranking objective the optimizer uses.

Per-architecture latencies need not be guessed: :func:`notification_hops`
derives the worst-case notify-chain depth from the MAMA connector graph
and :func:`architecture_detection_latency` folds it into a heartbeat
protocol's closed-form mean latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from collections.abc import Callable, Mapping, Sequence

from typing import TYPE_CHECKING

from repro.core.bounded import DEFAULT_EPSILON
from repro.core.dependency import CommonCause
from repro.core.progress import ProgressCallback, ScanCounters
from repro.core.sweep import SweepEngine, SweepPoint, SweepPointResult
from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel
from repro.mama.model import ConnectorKind, MAMAModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.markov.availability import ComponentAvailability

# The markov layer imports repro.core.performability at module import
# time, and this module is imported from core/__init__ — importing
# markov eagerly here would close an import cycle that breaks
# ``import repro.markov``.  The three markov entry points are therefore
# imported lazily inside the methods that use them.


def _format_time(t: float) -> str:
    return "inf" if math.isinf(t) else repr(float(t))


@dataclass(frozen=True)
class TemporalPoint:
    """System snapshot at one time along the transient curve."""

    time: float
    expected_reward: float
    failed_probability: float
    scan_cached: bool
    failure_probs: Mapping[str, float]

    @property
    def availability(self) -> float:
        """P(system operational at this time)."""
        return 1.0 - self.failed_probability

    def to_dict(self) -> dict:
        return {
            "time": float(self.time),
            "expected_reward": float(self.expected_reward),
            "failed_probability": float(self.failed_probability),
            "availability": float(self.availability),
            "scan_cached": bool(self.scan_cached),
            "failure_probs": {
                name: float(value)
                for name, value in sorted(self.failure_probs.items())
            },
        }


@dataclass(frozen=True)
class TemporalResult:
    """A transient curve plus its interval aggregates.

    ``interval_availability`` and ``time_averaged_reward`` are trapezoid
    integrals over ``horizon = (times[0], times[-1])`` divided by its
    length; ``reward_integral`` is the un-normalized integral (the
    optimizer's time-integrated reward).  ``steady`` is the ``t → ∞``
    point, evaluated at the exact steady-state unavailabilities — it
    matches the static analysis bit-for-bit through the shared engine.
    """

    architecture: str | None
    method: str
    points: tuple[TemporalPoint, ...]
    steady: SweepPointResult
    reward_integral: float
    interval_availability: float
    time_averaged_reward: float
    horizon: tuple[float, float]

    def point(self, time: float) -> TemporalPoint:
        for entry in self.points:
            if entry.time == time:
                return entry
        raise KeyError(time)

    def to_json_dict(self) -> dict:
        return {
            "architecture": self.architecture,
            "method": self.method,
            "horizon": [float(self.horizon[0]), float(self.horizon[1])],
            "reward_integral": float(self.reward_integral),
            "interval_availability": float(self.interval_availability),
            "time_averaged_reward": float(self.time_averaged_reward),
            "steady_state": {
                "expected_reward": float(self.steady.expected_reward),
                "failed_probability": float(self.steady.failed_probability),
            },
            "points": [entry.to_dict() for entry in self.points],
        }


@dataclass(frozen=True)
class ErosionPoint:
    """Detection-delay model solution at one mean latency."""

    latency: float
    detection_rate: float
    expected_reward: float
    instantaneous_reward: float
    stale_probability: float
    state_count: int

    @property
    def erosion_factor(self) -> float:
        """Fraction of the instantaneous-detection reward retained."""
        if self.instantaneous_reward == 0.0:
            return 1.0
        return self.expected_reward / self.instantaneous_reward

    def to_dict(self) -> dict:
        return {
            "latency": float(self.latency),
            "detection_rate": float(self.detection_rate),
            "expected_reward": float(self.expected_reward),
            "instantaneous_reward": float(self.instantaneous_reward),
            "erosion_factor": float(self.erosion_factor),
            "stale_probability": float(self.stale_probability),
            "state_count": int(self.state_count),
        }


@dataclass(frozen=True)
class EffectiveReward:
    """Separable latency-aware objective: integral × erosion factor."""

    reward_integral: float
    erosion: ErosionPoint

    @property
    def value(self) -> float:
        return self.reward_integral * self.erosion.erosion_factor


def time_grid(horizon: float, points: int) -> tuple[float, ...]:
    """Evenly spaced grid ``0, …, horizon`` with ``points`` entries."""
    if not (math.isfinite(horizon) and horizon > 0):
        raise ModelError(f"horizon must be positive, got {horizon!r}")
    if points < 2:
        raise ModelError(f"need at least 2 grid points, got {points}")
    step = horizon / (points - 1)
    return tuple(index * step for index in range(points))


def notification_hops(mama: MAMAModel | None) -> int:
    """Worst-case knowledge-propagation depth of an architecture.

    A component failure is first observed by its watcher (the heartbeat
    timeout itself — not a hop); from there knowledge spreads along the
    propagation edges of the MAMA: a NOTIFY connector pushes it from
    notifier to subscriber, and a STATUS_WATCH connector lets the
    watching monitor pick it up from the watched one.  The returned
    value is the maximum, over all watching monitors, of the longest
    shortest-path (in propagation edges) from that monitor to anything
    it can reach — the number of hops before the *last* interested
    party learns of the failure.  For the paper's four architectures
    this yields 3 (centralized, agents polled by one manager), 4
    (distributed, peer managers forward across domains), 4 (network,
    one intermediary layer on every path) and 5 (hierarchical, up to
    the manager-of-managers and back down).  Perfect knowledge
    (``mama is None``) has depth 0.
    """
    if mama is None:
        return 0
    edges: dict[str, list[str]] = {}
    monitors: set[str] = set()
    for connector in mama.connectors.values():
        if connector.kind is not ConnectorKind.ALIVE_WATCH:
            # NOTIFY: source pushes to target.  STATUS_WATCH: target
            # polls source — either way knowledge moves source → target.
            edges.setdefault(connector.source, []).append(connector.target)
        if connector.kind is not ConnectorKind.NOTIFY:
            monitors.add(connector.target)
    worst = 0
    for monitor in monitors:
        # BFS eccentricity of the monitor in the propagation digraph.
        distance = {monitor: 0}
        frontier = [monitor]
        while frontier:
            next_frontier = []
            for node in frontier:
                for successor in edges.get(node, ()):
                    if successor not in distance:
                        distance[successor] = distance[node] + 1
                        next_frontier.append(successor)
            frontier = next_frontier
        worst = max(worst, max(distance.values()))
    return worst


def architecture_detection_latency(mama: MAMAModel | None, heartbeat) -> float:
    """Mean detection latency of an architecture under a heartbeat
    protocol: the closed-form heartbeat latency with the hop count
    replaced by the MAMA's :func:`notification_hops`."""
    from repro.sim.heartbeat import mean_detection_latency

    return mean_detection_latency(
        replace(heartbeat, hops=notification_hops(mama))
    )


class TemporalAnalyzer:
    """Time-dependent performability over a shared sweep engine.

    Parameters
    ----------
    ftlqn:
        The layered performance model.
    architectures:
        Mapping of architecture key → MAMA model (as for
        :class:`~repro.core.sweep.SweepEngine`).  Ignored when an
        ``engine`` is injected, except that any architectures it names
        are registered on the injected engine.
    rates:
        Per-component failure/repair rates.  Use
        :meth:`ComponentAvailability.from_probability` to lift an
        existing static scenario (the steady-state unavailability then
        equals the original probability, so ``t → ∞`` reproduces the
        static analysis exactly).
    common_causes:
        Common-cause events at their *steady-state* probabilities; each
        is transient-ized with ``cause_repair_rate`` so the whole
        scenario starts all-up at ``t = 0``.
    weights:
        Reward weights (per reference task) applied to every point;
        ``None`` keeps the engine's base reward.
    engine:
        An existing (warm) :class:`SweepEngine` to reuse — the service
        passes its per-model engine here so temporal requests share the
        LQN/scan caches with everything else.  Must wrap the same
        ``ftlqn``.
    """

    def __init__(
        self,
        ftlqn: FTLQNModel,
        architectures: Mapping[str, MAMAModel] | None = None,
        *,
        rates: Mapping[str, ComponentAvailability],
        common_causes: Sequence[CommonCause] = (),
        cause_repair_rate: float = 1.0,
        weights: Mapping[str, float] | None = None,
        engine: SweepEngine | None = None,
        lqn_solver=None,
    ):
        from repro.markov.availability import ComponentAvailability

        self._ftlqn = ftlqn
        self._rates = dict(rates)
        self._weights = dict(weights) if weights is not None else None
        self._causes = tuple(common_causes)
        self._cause_rates = {
            cause.name: ComponentAvailability.from_probability(
                cause.probability, repair_rate=cause_repair_rate
            )
            for cause in self._causes
        }
        if engine is None:
            engine = SweepEngine(
                ftlqn, architectures, lqn_solver=lqn_solver
            )
        elif architectures:
            for key, mama in architectures.items():
                engine.add_architecture(key, mama)
        self.engine = engine

    @property
    def rates(self) -> Mapping[str, ComponentAvailability]:
        return dict(self._rates)

    def probabilities_at(self, t: float) -> dict[str, float]:
        """Exact per-component down probabilities at time ``t`` (the
        steady-state unavailabilities at ``t = inf``)."""
        from repro.markov.transient import transient_unavailability

        if math.isinf(t):
            return {
                name: availability.unavailability
                for name, availability in self._rates.items()
            }
        return {
            name: transient_unavailability(availability, t)
            for name, availability in self._rates.items()
        }

    def _causes_at(self, t: float) -> tuple[CommonCause, ...]:
        from repro.markov.transient import transient_unavailability

        if math.isinf(t):
            return self._causes
        return tuple(
            replace(
                cause,
                probability=transient_unavailability(
                    self._cause_rates[cause.name], t
                ),
            )
            for cause in self._causes
        )

    def point_for(self, t: float, architecture: str | None) -> SweepPoint:
        """The sweep point encoding the system at time ``t``."""
        if not (t >= 0):  # also rejects NaN
            raise ModelError(f"time must be >= 0, got {t!r}")
        return SweepPoint(
            name=f"t={_format_time(t)}",
            architecture=architecture,
            failure_probs=self.probabilities_at(t),
            common_causes=self._causes_at(t),
            weights=self._weights,
        )

    def _solve(
        self,
        point: SweepPoint,
        *,
        method: str,
        jobs: int,
        epsilon: float,
        progress: ProgressCallback | None,
        counters: ScanCounters,
    ) -> SweepPointResult:
        return self.engine.run(
            [point],
            method=method,
            jobs=jobs,
            epsilon=epsilon,
            progress=progress,
            counters=counters,
        ).points[0]

    def steady_state(
        self,
        *,
        architecture: str | None = None,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> SweepPointResult:
        """The ``t → ∞`` solve — identical to the static analysis."""
        return self._solve(
            self.point_for(float("inf"), architecture),
            method=method,
            jobs=jobs,
            epsilon=epsilon,
            progress=progress,
            counters=counters if counters is not None else ScanCounters(),
        )

    def evaluate(
        self,
        times: Sequence[float],
        *,
        architecture: str | None = None,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
        on_point: Callable[[TemporalPoint], None] | None = None,
    ) -> TemporalResult:
        """Transient curve over a strictly increasing time grid.

        ``on_point`` (if given) is called with each
        :class:`TemporalPoint` as soon as it is solved — the service
        streams NDJSON lines from it.
        """
        times = [float(t) for t in times]
        if len(times) < 2:
            raise ModelError("need at least 2 time points")
        for earlier, later in zip(times, times[1:]):
            if not earlier < later:
                raise ModelError(
                    f"times must be strictly increasing, "
                    f"got {earlier!r} before {later!r}"
                )
        if not (math.isfinite(times[0]) and times[0] >= 0):
            raise ModelError(f"times must start >= 0, got {times[0]!r}")
        if not math.isfinite(times[-1]):
            raise ModelError("times must be finite (steady state is "
                             "reported separately)")
        if counters is None:
            counters = ScanCounters()

        points: list[TemporalPoint] = []
        for t in times:
            solved = self._solve(
                self.point_for(t, architecture),
                method=method,
                jobs=jobs,
                epsilon=epsilon,
                progress=progress,
                counters=counters,
            )
            entry = TemporalPoint(
                time=t,
                expected_reward=solved.expected_reward,
                failed_probability=solved.failed_probability,
                scan_cached=solved.scan_cached,
                failure_probs=solved.failure_probs,
            )
            points.append(entry)
            if on_point is not None:
                on_point(entry)
        steady = self.steady_state(
            architecture=architecture,
            method=method,
            jobs=jobs,
            epsilon=epsilon,
            progress=progress,
            counters=counters,
        )

        span = times[-1] - times[0]
        reward_integral = _trapezoid(
            times, [entry.expected_reward for entry in points]
        )
        availability_integral = _trapezoid(
            times, [entry.availability for entry in points]
        )
        return TemporalResult(
            architecture=architecture,
            method=method,
            points=tuple(points),
            steady=steady,
            reward_integral=reward_integral,
            interval_availability=availability_integral / span,
            time_averaged_reward=reward_integral / span,
            horizon=(times[0], times[-1]),
        )

    def _group_rewards(
        self, steady: SweepPointResult
    ) -> dict[frozenset[str], dict[str, float]]:
        """Per-configuration, per-group reward rates for the delay
        model, consistent with the engine's reward function."""
        rewards: dict[frozenset[str], dict[str, float]] = {}
        for record in steady.result.records:
            if record.configuration is None:
                continue
            if self._weights is None:
                rewards[record.configuration] = dict(record.throughputs)
            else:
                rewards[record.configuration] = {
                    group: weight * record.throughputs.get(group, 0.0)
                    for group, weight in self._weights.items()
                }
        return rewards

    def erosion_curve(
        self,
        latencies: Sequence[float],
        *,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> tuple[ErosionPoint, ...]:
        """Reward retained vs. mean detection latency.

        Solves the §7 delay model once per latency over the unreliable
        *application* components.  The chain models latency under
        perfect knowledge — management unreliability and common causes
        live on the orthogonal coverage axis, and an architecture
        enters only through the latency its protocol implies
        (:func:`architecture_detection_latency`) — so group rewards
        come from the perfect-knowledge steady solve, which discovers
        every configuration the chain can adopt.  Latency ``0`` is the
        instantaneous baseline itself.
        """
        from repro.markov.detection import detection_delay_model

        for latency in latencies:
            if not (math.isfinite(latency) and latency >= 0):
                raise ModelError(
                    f"latencies must be finite and >= 0, got {latency!r}"
                )
        app_names = self._ftlqn.component_names()
        chain_rates = {
            name: availability
            for name, availability in self._rates.items()
            if name in app_names
        }
        # Group rewards come from the perfect-knowledge steady solve
        # over the application components alone: management components
        # and common causes do not exist in the no-MAMA analysis (and
        # the chain does not model them either).
        steady = self._solve(
            SweepPoint(
                name="t=inf",
                architecture=None,
                failure_probs={
                    name: availability.unavailability
                    for name, availability in chain_rates.items()
                },
                common_causes=(),
                weights=self._weights,
            ),
            method=method,
            jobs=jobs,
            epsilon=epsilon,
            progress=progress,
            counters=counters if counters is not None else ScanCounters(),
        )
        group_rewards = self._group_rewards(steady)
        curve: list[ErosionPoint] = []
        baseline: ErosionPoint | None = None
        for latency in latencies:
            if latency == 0:
                if baseline is None:
                    baseline = self._instantaneous_point(
                        chain_rates, group_rewards
                    )
                curve.append(baseline)
                continue
            solution = detection_delay_model(
                self._ftlqn,
                chain_rates,
                group_rewards,
                detection_rate=1.0 / latency,
            )
            curve.append(
                ErosionPoint(
                    latency=latency,
                    detection_rate=1.0 / latency,
                    expected_reward=solution.expected_reward,
                    instantaneous_reward=solution.instantaneous_reward,
                    stale_probability=solution.stale_probability,
                    state_count=solution.state_count,
                )
            )
        return tuple(curve)

    def _instantaneous_point(self, chain_rates, group_rewards) -> ErosionPoint:
        from repro.markov.detection import detection_delay_model

        # The zero-latency limit needs no chain: solve the delay model
        # at an arbitrary rate and reuse its instantaneous baseline.
        solution = detection_delay_model(
            self._ftlqn, chain_rates, group_rewards, detection_rate=1.0
        )
        return ErosionPoint(
            latency=0.0,
            detection_rate=math.inf,
            expected_reward=solution.instantaneous_reward,
            instantaneous_reward=solution.instantaneous_reward,
            stale_probability=0.0,
            state_count=0,
        )

    def effective_reward(
        self,
        times: Sequence[float],
        latency: float,
        *,
        architecture: str | None = None,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> EffectiveReward:
        """Latency-aware ranking objective: time-integrated reward over
        the grid, discounted by the erosion factor at ``latency``."""
        curve = self.evaluate(
            times,
            architecture=architecture,
            method=method,
            jobs=jobs,
            epsilon=epsilon,
            progress=progress,
            counters=counters,
        )
        (erosion,) = self.erosion_curve(
            [latency],
            method=method,
            jobs=jobs,
            epsilon=epsilon,
            progress=progress,
            counters=counters,
        )
        return EffectiveReward(
            reward_integral=curve.reward_integral, erosion=erosion
        )


def _trapezoid(times: Sequence[float], values: Sequence[float]) -> float:
    total = 0.0
    for index in range(1, len(times)):
        step = times[index] - times[index - 1]
        total += 0.5 * step * (values[index] + values[index - 1])
    return total
