"""Result containers for performability analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.core.progress import ScanCounters


@dataclass(frozen=True)
class ConfigurationRecord:
    """One distinct operational configuration with its statistics.

    Attributes
    ----------
    configuration:
        The frozenset of in-use entry/service node names; ``None`` for
        the system-failed configuration.
    probability:
        Steady-state probability of the system operating in this
        configuration.
    reward:
        Reward rate assigned to the configuration (0 for failed).
    throughputs:
        Per-reference-task throughput in this configuration (empty for
        failed).
    converged:
        Whether the configuration's LQN solve met its tolerance.  An
        unconverged solution still contributes its (approximate) reward
        to the expectation, but is flagged here and counted in
        :attr:`~repro.core.progress.ScanCounters.lqn_unconverged`.
        Always True for the failed configuration (no solve needed).
    """

    configuration: frozenset[str] | None
    probability: float
    reward: float
    throughputs: Mapping[str, float] = field(default_factory=dict)
    converged: bool = True

    @property
    def is_failed(self) -> bool:
        return self.configuration is None

    def label(self) -> str:
        """Human-readable single-line description."""
        if self.configuration is None:
            return "System Failed"
        return "{" + ", ".join(sorted(self.configuration)) + "}"

    def to_dict(self) -> dict:
        """Canonical JSON form (sorted component list, ``None`` for the
        failed configuration) — the schema shared by sweep exports and
        campaign-store rows."""
        return {
            "configuration": (
                sorted(self.configuration)
                if self.configuration is not None
                else None
            ),
            "probability": float(self.probability),
            "reward": float(self.reward),
            "throughputs": {
                task: float(value)
                for task, value in sorted(self.throughputs.items())
            },
            "converged": bool(self.converged),
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "ConfigurationRecord":
        """Rebuild a record from :meth:`to_dict` output (exact floats:
        JSON round-trips IEEE doubles via shortest-repr)."""
        configuration = document["configuration"]
        return cls(
            configuration=(
                None if configuration is None
                else frozenset(str(name) for name in configuration)
            ),
            probability=float(document["probability"]),
            reward=float(document["reward"]),
            throughputs={
                str(task): float(value)
                for task, value in document.get("throughputs", {}).items()
            },
            converged=bool(document.get("converged", True)),
        )


@dataclass(frozen=True)
class PerformabilityResult:
    """Full output of :class:`repro.core.PerformabilityAnalyzer`.

    Attributes
    ----------
    records:
        One record per distinct configuration (failed included), sorted
        by decreasing probability with the failed record last.
    expected_reward:
        Σ_i R_i · Prob(C_i) — the paper's performability measure.
    state_count:
        Size of the state space scanned (2^N for the enumerative
        method; also 2^N for the factored method, which covers the same
        space symbolically).
    method:
        ``"enumeration"`` or ``"factored"``.
    jobs:
        Worker processes used by the state-space scan (1 = sequential).
    counters:
        Instrumentation filled during :meth:`PerformabilityAnalyzer
        .solve` (states visited, cache hits, per-phase wall time); see
        :class:`repro.core.progress.ScanCounters`.  ``None`` when the
        result was constructed without instrumentation.
    unexplored_probability:
        Probability mass of states the scan did not visit — 0.0 for
        every exact backend, and the rigorous leftover bound for the
        ``bounded`` backend (at most its ε).
    reward_lower / reward_upper:
        Rigorous bounds on the exact expected reward.  Exact backends
        report the point value for both; the ``bounded`` backend
        reports ``expected_reward`` (the enumerated-mass contribution;
        unexplored states counted as reward 0) as the lower bound and
        ``expected_reward + unexplored_probability · R_max`` as the
        upper, where ``R_max`` bounds any single configuration's reward
        (see ``PerformabilityAnalyzer.evaluate_probabilities``).
    """

    records: tuple[ConfigurationRecord, ...]
    expected_reward: float
    state_count: int
    method: str
    jobs: int = 1
    counters: ScanCounters | None = None
    unexplored_probability: float = 0.0
    reward_lower: float | None = None
    reward_upper: float | None = None

    @property
    def reward_interval(self) -> tuple[float, float]:
        """``[lower, upper]`` bounds on the exact expected reward.

        Collapses to ``(expected_reward, expected_reward)`` for exact
        backends; for the ``bounded`` backend the exact value is
        guaranteed to lie inside, and the width shrinks monotonically
        with the backend's ε.
        """
        if self.reward_lower is None or self.reward_upper is None:
            return (self.expected_reward, self.expected_reward)
        return (self.reward_lower, self.reward_upper)

    @property
    def failed_probability(self) -> float:
        """Probability that the system is not operational."""
        for record in self.records:
            if record.is_failed:
                return record.probability
        return 0.0

    @property
    def operational_records(self) -> tuple[ConfigurationRecord, ...]:
        return tuple(r for r in self.records if not r.is_failed)

    @property
    def unconverged_records(self) -> tuple[ConfigurationRecord, ...]:
        """Records whose LQN solution did not meet its tolerance."""
        return tuple(r for r in self.records if not r.converged)

    def probability_of(self, configuration: frozenset[str] | None) -> float:
        """Probability of one configuration (0.0 if never reached)."""
        for record in self.records:
            if record.configuration == configuration:
                return record.probability
        return 0.0

    def total_probability(self) -> float:
        """Sanity measure: 1 up to rounding for exact backends, and
        ``1 - unexplored_probability`` for the ``bounded`` backend."""
        return sum(record.probability for record in self.records)

    def average_throughput(self, task: str) -> float:
        """Probability-weighted mean throughput of a reference task.

        Reproduces the paper's "Average UserA/UserB throughput" rows.
        """
        return sum(
            record.probability * record.throughputs.get(task, 0.0)
            for record in self.records
        )

    def to_dict(self) -> dict:
        """Canonical JSON form carrying full fidelity (records,
        counters, reward interval) so a stored result reconstructs
        exactly — the campaign store's row payload."""
        return {
            "records": [record.to_dict() for record in self.records],
            "expected_reward": float(self.expected_reward),
            "state_count": int(self.state_count),
            "method": self.method,
            "jobs": int(self.jobs),
            "counters": (
                None if self.counters is None else self.counters.to_dict()
            ),
            "unexplored_probability": float(self.unexplored_probability),
            "reward_lower": (
                None if self.reward_lower is None else float(self.reward_lower)
            ),
            "reward_upper": (
                None if self.reward_upper is None else float(self.reward_upper)
            ),
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "PerformabilityResult":
        """Rebuild a result from :meth:`to_dict` output.  Records keep
        their serialized order, so re-folding the expected reward from
        a round-tripped result is bit-identical."""
        counters_doc = document.get("counters")
        return cls(
            records=tuple(
                ConfigurationRecord.from_dict(entry)
                for entry in document["records"]
            ),
            expected_reward=float(document["expected_reward"]),
            state_count=int(document["state_count"]),
            method=str(document["method"]),
            jobs=int(document.get("jobs", 1)),
            counters=(
                None if counters_doc is None
                else ScanCounters.from_dict(counters_doc)
            ),
            unexplored_probability=float(
                document.get("unexplored_probability", 0.0)
            ),
            reward_lower=(
                None if document.get("reward_lower") is None
                else float(document["reward_lower"])
            ),
            reward_upper=(
                None if document.get("reward_upper") is None
                else float(document["reward_upper"])
            ),
        )
