"""Result containers for performability analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.core.progress import ScanCounters


@dataclass(frozen=True)
class ConfigurationRecord:
    """One distinct operational configuration with its statistics.

    Attributes
    ----------
    configuration:
        The frozenset of in-use entry/service node names; ``None`` for
        the system-failed configuration.
    probability:
        Steady-state probability of the system operating in this
        configuration.
    reward:
        Reward rate assigned to the configuration (0 for failed).
    throughputs:
        Per-reference-task throughput in this configuration (empty for
        failed).
    converged:
        Whether the configuration's LQN solve met its tolerance.  An
        unconverged solution still contributes its (approximate) reward
        to the expectation, but is flagged here and counted in
        :attr:`~repro.core.progress.ScanCounters.lqn_unconverged`.
        Always True for the failed configuration (no solve needed).
    """

    configuration: frozenset[str] | None
    probability: float
    reward: float
    throughputs: Mapping[str, float] = field(default_factory=dict)
    converged: bool = True

    @property
    def is_failed(self) -> bool:
        return self.configuration is None

    def label(self) -> str:
        """Human-readable single-line description."""
        if self.configuration is None:
            return "System Failed"
        return "{" + ", ".join(sorted(self.configuration)) + "}"


@dataclass(frozen=True)
class PerformabilityResult:
    """Full output of :class:`repro.core.PerformabilityAnalyzer`.

    Attributes
    ----------
    records:
        One record per distinct configuration (failed included), sorted
        by decreasing probability with the failed record last.
    expected_reward:
        Σ_i R_i · Prob(C_i) — the paper's performability measure.
    state_count:
        Size of the state space scanned (2^N for the enumerative
        method; also 2^N for the factored method, which covers the same
        space symbolically).
    method:
        ``"enumeration"`` or ``"factored"``.
    jobs:
        Worker processes used by the state-space scan (1 = sequential).
    counters:
        Instrumentation filled during :meth:`PerformabilityAnalyzer
        .solve` (states visited, cache hits, per-phase wall time); see
        :class:`repro.core.progress.ScanCounters`.  ``None`` when the
        result was constructed without instrumentation.
    unexplored_probability:
        Probability mass of states the scan did not visit — 0.0 for
        every exact backend, and the rigorous leftover bound for the
        ``bounded`` backend (at most its ε).
    reward_lower / reward_upper:
        Rigorous bounds on the exact expected reward.  Exact backends
        report the point value for both; the ``bounded`` backend
        reports ``expected_reward`` (the enumerated-mass contribution;
        unexplored states counted as reward 0) as the lower bound and
        ``expected_reward + unexplored_probability · R_max`` as the
        upper, where ``R_max`` bounds any single configuration's reward
        (see ``PerformabilityAnalyzer.evaluate_probabilities``).
    """

    records: tuple[ConfigurationRecord, ...]
    expected_reward: float
    state_count: int
    method: str
    jobs: int = 1
    counters: ScanCounters | None = None
    unexplored_probability: float = 0.0
    reward_lower: float | None = None
    reward_upper: float | None = None

    @property
    def reward_interval(self) -> tuple[float, float]:
        """``[lower, upper]`` bounds on the exact expected reward.

        Collapses to ``(expected_reward, expected_reward)`` for exact
        backends; for the ``bounded`` backend the exact value is
        guaranteed to lie inside, and the width shrinks monotonically
        with the backend's ε.
        """
        if self.reward_lower is None or self.reward_upper is None:
            return (self.expected_reward, self.expected_reward)
        return (self.reward_lower, self.reward_upper)

    @property
    def failed_probability(self) -> float:
        """Probability that the system is not operational."""
        for record in self.records:
            if record.is_failed:
                return record.probability
        return 0.0

    @property
    def operational_records(self) -> tuple[ConfigurationRecord, ...]:
        return tuple(r for r in self.records if not r.is_failed)

    @property
    def unconverged_records(self) -> tuple[ConfigurationRecord, ...]:
        """Records whose LQN solution did not meet its tolerance."""
        return tuple(r for r in self.records if not r.converged)

    def probability_of(self, configuration: frozenset[str] | None) -> float:
        """Probability of one configuration (0.0 if never reached)."""
        for record in self.records:
            if record.configuration == configuration:
                return record.probability
        return 0.0

    def total_probability(self) -> float:
        """Sanity measure: 1 up to rounding for exact backends, and
        ``1 - unexplored_probability`` for the ``bounded`` backend."""
        return sum(record.probability for record in self.records)

    def average_throughput(self, task: str) -> float:
        """Probability-weighted mean throughput of a reference task.

        Reproduces the paper's "Average UserA/UserB throughput" rows.
        """
        return sum(
            record.probability * record.throughputs.get(task, 0.0)
            for record in self.records
        )
