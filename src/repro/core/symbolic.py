"""Symbolic (ROBDD) configuration-probability backend: past the 2^N wall.

Every scanning backend — interpreted enumeration, the factored
decision-tree evaluator, the compiled bit kernel — ultimately *visits*
states: their cost is Θ(2^a) or Θ(2^N) with different constant
factors, which walls the analysis off around N ≈ 20 unreliable
components.  This module evaluates the same §5 step-4 semantics without
visiting any state at all:

1. **Symbolic derivation** reuses
   :func:`repro.core.kernel.derive_indicators` — one Boolean indicator
   expression for "the system works" (Definition 1) plus one
   "this node is part of the configuration in use" expression per
   non-leaf fault-graph node (Definition 2), over the unreliable
   component variables, knowledge gating already substituted in.
   Because expressions are hash-consed the indicator set is a compact
   DAG.

2. **ROBDD compilation** converts that DAG into one shared
   :class:`repro.booleans.bdd.BDD` manager (memoised per DAG node, so
   shared subterms convert once).  The diagram size depends on the
   *structure* of the fault/knowledge logic, not on 2^N — replicated
   and layered topologies compile to polynomially many nodes.

3. **Signature splitting + weighted traversal**
   (:meth:`~repro.booleans.bdd.BDD.signature_masses`) partitions the
   state space by the joint truth signature of all indicators — each
   reachable signature *is* one distinct configuration — and computes
   each part's exact probability by one weighted traversal, linear in
   diagram size.  Work scales with (number of distinct configurations)
   × (diagram size), never with 2^N.

The result is exactly the configuration → probability map of the other
backends (parity-gated at 1e-12 by the differential oracle and
``BENCH_statespace.json``), but a 100-component replicated topology —
2^100 states, forever out of reach of any scanning backend — solves
exactly in a couple of seconds.

``jobs`` is accepted for engine-signature compatibility and ignored:
the symbolic build is a single shared-structure computation with
nothing embarrassingly parallel about it, and it is fast precisely
because it shares everything.
"""

from __future__ import annotations

import time

from repro.booleans.bdd import BDD
from repro.core.enumeration import StateSpaceProblem
from repro.core.kernel import SymbolicIndicators, derive_indicators
from repro.core.progress import ProgressCallback, ProgressReporter, ScanCounters


def problem_variables(problem: StateSpaceProblem) -> tuple[str, ...]:
    """The unreliable variables, in the canonical backend order.

    Application components first, then management components — the same
    order the bit kernel packs into state-index bits, so diagnostics
    line up across backends.
    """
    return problem.app_components + problem.mgmt_components


def build_indicator_bdd(
    problem: StateSpaceProblem,
    indicators: SymbolicIndicators | None = None,
) -> tuple[BDD, list[int]]:
    """Compile a problem's indicator DAG into one shared ROBDD.

    Returns the manager and the output node list: outputs[0] is the
    root ("system working") indicator, outputs[1 + i] the in-use
    indicator of the i-th configuration node (sorted by name, matching
    :class:`~repro.core.kernel.SymbolicIndicators`).
    """
    if indicators is None:
        indicators = derive_indicators(problem)
    manager = BDD(problem_variables(problem))
    outputs = [manager.from_expr(indicators.root)]
    outputs.extend(
        manager.from_expr(expr) for _, expr in indicators.in_use
    )
    return manager, outputs


def bdd_configurations(
    problem: StateSpaceProblem,
    *,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    counters: ScanCounters | None = None,
) -> dict[frozenset[str] | None, float]:
    """Exact configuration probabilities by symbolic ROBDD evaluation.

    Drop-in alternative to the scanning backends: same inputs, same
    configuration → probability map (up to floating-point summation
    order), same ``progress``/``counters`` protocol.  Unlike them its
    cost is polynomial in the shared diagram size — the only backend
    that remains exact when N is in the hundreds.

    Fills ``counters.bdd_nodes`` (total allocated diagram nodes) and
    ``counters.bdd_cache_hits`` (apply-cache hits); ``states_visited``
    advances by the full 2^N covered symbolically, mirroring the
    factored backend's accounting.
    """
    if counters is None:
        counters = ScanCounters()
    reporter = ProgressReporter(progress)
    total_states = problem.state_count
    started = time.perf_counter()

    indicators = derive_indicators(problem)
    manager, outputs = build_indicator_bdd(problem, indicators)
    up_probability = {
        name: problem.up_probability[name]
        for name in problem_variables(problem)
    }
    masses = manager.signature_masses(outputs, up_probability)

    config_nodes = tuple(name for name, _ in indicators.in_use)
    accumulator: dict[frozenset[str] | None, float] = {}
    for signature, mass in sorted(masses.items()):
        if not signature[0]:  # root not working
            configuration: frozenset[str] | None = None
        else:
            configuration = frozenset(
                name
                for name, in_use in zip(config_nodes, signature[1:])
                if in_use
            )
        accumulator[configuration] = (
            accumulator.get(configuration, 0.0) + mass
        )

    counters.states_visited += total_states
    counters.bdd_nodes += len(manager)
    counters.bdd_cache_hits += manager.apply_cache_hits
    counters.record_level("distinct_configurations", len(accumulator))
    counters.scan_seconds += time.perf_counter() - started
    reporter.emit(
        "scan", counters.states_visited, total_states, counters, force=True
    )
    return accumulator
