"""Reward functions for performability analysis (§5 step 5, §6.3).

A reward function maps ``(configuration, lqn_results)`` to a scalar
reward rate.  ``configuration`` is the frozenset of in-use node names
(never ``None`` — the failed configuration always has reward 0 and is
not passed to reward functions).  ``lqn_results`` is the solved
performance model for that configuration.

The paper's §6.3 reward is the weighted sum of user-group throughputs
R_i = Σ_j w_j · f_{i,j}; :func:`weighted_throughput_reward` builds it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.lqn.results import LQNResults

RewardFunction = Callable[[frozenset[str], LQNResults], float]


def weighted_throughput_reward(weights: Mapping[str, float]) -> RewardFunction:
    """R_i = Σ_j w_j · f_{i,j} over the reference tasks named in ``weights``.

    Reference tasks absent from a configuration (failed user groups)
    contribute zero.
    """

    def reward(configuration: frozenset[str], results: LQNResults) -> float:
        total = 0.0
        for task, weight in weights.items():
            total += weight * results.task_throughputs.get(task, 0.0)
        return total

    # Expose the weight map so consumers that can bound throughputs can
    # bound the reward too (the optimizer's bounds fast path reads this;
    # an opaque RewardFunction without ``.weights`` disables it).
    reward.weights = dict(weights)
    return reward


def total_reference_throughput(reference_tasks: Iterable[str]) -> RewardFunction:
    """Unweighted total throughput of the named user groups (w_j = 1)."""
    return weighted_throughput_reward({name: 1.0 for name in reference_tasks})
