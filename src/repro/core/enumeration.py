"""The paper's literal state-space scan (§5, step 4).

Enumerates all 2^N up/down states of the unreliable tasks and
processors (application and management alike, plus any connectors given
a failure probability), evaluates knowledge-gated reconfiguration in
each state, and accumulates the probability of every distinct
operational configuration.

The loop is organised application-components-outer /
management-components-inner: the ``know`` expressions are partially
evaluated at the application state once, and the fault graph is
re-evaluated only for distinct knowledge-bit patterns.  This changes
nothing semantically — every one of the 2^N states is still visited —
but keeps the Python constant factor tolerable.

Parallelism
-----------
The outer (application-state) loop is index-addressable: application
state ``i`` (0 ≤ i < 2^a) is decoded by :func:`app_bits_for_index` in
exactly the order ``itertools.product((True, False), repeat=a)`` would
produce it.  :func:`enumerate_configurations` therefore splits the
index range into contiguous chunks and dispatches them over a
:class:`concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``:
each worker receives the pickled :class:`StateSpaceProblem` plus its
``[start, stop)`` slice, scans it with the identical inner loop, and
returns a partial configuration→probability accumulator together with
its :class:`~repro.core.progress.ScanCounters`.  The parent merges the
partial accumulators in chunk-index order, so results are deterministic
for a given ``jobs`` value; ``jobs=1`` bypasses the pool entirely and
is bit-for-bit identical to the historical sequential scan.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from itertools import product
from collections.abc import Mapping

from repro.booleans.expr import Expr, FALSE, TRUE
from repro.core.progress import ProgressCallback, ProgressReporter, ScanCounters
from repro.errors import ModelError
from repro.ftlqn.fault_graph import FaultPropagationGraph

#: Canonical scan-method names and their accepted aliases.  ``interp``
#: is the CLI backend spelling of the interpreted enumerative scan.
_METHOD_ALIASES = {
    "enumeration": "enumeration",
    "interp": "enumeration",
    "factored": "factored",
    "bits": "bits",
    "bdd": "bdd",
    "bounded": "bounded",
}


def method_choices() -> tuple[str, ...]:
    """Every accepted scan method/backend spelling, sorted.

    The single source of truth for CLI ``choices=`` lists and error
    messages: adding a backend to :data:`_METHOD_ALIASES` updates every
    user-facing enumeration of valid names automatically.
    """
    return tuple(sorted(_METHOD_ALIASES))


def normalize_method(method: str) -> str:
    """Resolve a scan method/backend name to its canonical form.

    Accepts ``"enumeration"`` (alias ``"interp"``), ``"factored"``,
    ``"bits"``, ``"bdd"`` and ``"bounded"``; anything else raises
    :class:`~repro.errors.ModelError`.  Every entry point that takes a
    ``method`` argument normalises through here, so aliases behave
    identically everywhere (including sweep scan-cache keys).
    """
    canonical = _METHOD_ALIASES.get(method)
    if canonical is None:
        known = list(method_choices())
        raise ModelError(f"unknown method {method!r}; expected one of {known}")
    return canonical


@dataclass(frozen=True)
class StateSpaceProblem:
    """Inputs shared by the enumerative and factored evaluators.

    Instances must pickle cleanly: the parallel engine ships them to
    :class:`~concurrent.futures.ProcessPoolExecutor` workers.

    Attributes
    ----------
    graph:
        The fault propagation graph of the application.
    know_exprs:
        ``know[c, t]`` boolean expressions keyed by (component, task);
        empty together with ``perfect=True`` for the idealised analysis.
    perfect:
        If True, every task knows everything (no MAMA model).
    app_components:
        Unreliable FTLQN components (graph leaves), in a fixed order.
    mgmt_components:
        Unreliable management-only variables (agent/manager tasks,
        their processors, and any connectors with a failure
        probability), in a fixed order.
    fixed_up / fixed_down:
        Variables pinned up (perfectly reliable) or down (certain to be
        failed).
    up_probability:
        Probability of being operational for every unreliable variable.
    """

    graph: FaultPropagationGraph
    know_exprs: Mapping[tuple[str, str], Expr]
    perfect: bool
    app_components: tuple[str, ...]
    mgmt_components: tuple[str, ...]
    fixed_up: frozenset[str]
    fixed_down: frozenset[str]
    up_probability: Mapping[str, float]
    #: Common-cause coverage: leaf component -> the event variables that
    #: take it down when they fire (event variable True = event has NOT
    #: occurred, keeping "up" semantics uniform).
    leaf_causes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def state_count(self) -> int:
        """2^N over all unreliable entities (the paper's N)."""
        return 2 ** (len(self.app_components) + len(self.mgmt_components))

    @property
    def app_state_count(self) -> int:
        """2^a over the application-side entities (the outer loop)."""
        return 2 ** len(self.app_components)

    @property
    def mgmt_state_count(self) -> int:
        """2^m over the management-side entities (the inner loop)."""
        return 2 ** len(self.mgmt_components)

    def fixed_assignment(self) -> dict[str, bool]:
        assignment = {name: True for name in self.fixed_up}
        assignment.update({name: False for name in self.fixed_down})
        return assignment

    def _variable_value(self, name: str, app_state: Mapping[str, bool]) -> bool:
        if name in app_state:
            return app_state[name]
        return name not in self.fixed_down

    def leaf_state(self, app_state: Mapping[str, bool]) -> dict[str, bool]:
        """Total up/down state of the fault-graph leaves.

        A leaf is up iff its own variable is up and no common-cause
        event covering it has fired.
        """
        state: dict[str, bool] = {}
        for leaf in self.graph.leaves():
            name = leaf.name
            up = self._variable_value(name, app_state)
            if up:
                for event in self.leaf_causes.get(name, ()):
                    if not self._variable_value(event, app_state):
                        up = False
                        break
            state[name] = up
        return state


def app_bits_for_index(index: int, width: int) -> tuple[bool, ...]:
    """Decode outer-loop state ``index`` into up/down bits.

    Matches ``itertools.product((True, False), repeat=width)`` exactly:
    index 0 is all-up, the last component toggles fastest, and a set
    binary bit means *down* (``False``).
    """
    return tuple(
        (index >> (width - 1 - position)) & 1 == 0
        for position in range(width)
    )


def _state_probability(
    names: tuple[str, ...],
    bits: tuple[bool, ...],
    up_probability: Mapping[str, float],
) -> float:
    probability = 1.0
    for name, up in zip(names, bits):
        p_up = up_probability[name]
        probability *= p_up if up else 1.0 - p_up
    return probability


def _scan_range(
    problem: StateSpaceProblem,
    start: int,
    stop: int,
    accumulator: dict[frozenset[str] | None, float],
    counters: ScanCounters,
    tick=None,
) -> None:
    """Scan application states ``[start, stop)`` into ``accumulator``.

    This is the historical sequential loop body, restricted to an index
    slice of the outer loop.  ``tick``, if given, is called after each
    application state with the number of raw states just covered (for
    progress reporting in the sequential path — workers report only
    through their returned counters).
    """
    fixed = problem.fixed_assignment()
    pairs = list(problem.know_exprs)
    width = len(problem.app_components)
    mgmt_states = problem.mgmt_state_count

    for index in range(start, stop):
        app_bits = app_bits_for_index(index, width)
        app_state = dict(zip(problem.app_components, app_bits))
        counters.app_states_visited += 1
        p_app = _state_probability(
            problem.app_components, app_bits, problem.up_probability
        )
        if p_app == 0.0:
            # The whole management slice of this application state
            # contributes nothing; count it as covered.
            counters.states_visited += mgmt_states
            if tick is not None:
                tick(mgmt_states)
            continue
        leaf_state = problem.leaf_state(app_state)

        substitution = {**fixed, **app_state}
        reduced: dict[tuple[str, str], Expr] = {
            pair: expr.substitute(substitution)
            for pair, expr in problem.know_exprs.items()
        }

        config_memo: dict[tuple[bool, ...], frozenset[str] | None] = {}
        for mgmt_bits in product(
            (True, False), repeat=len(problem.mgmt_components)
        ):
            counters.states_visited += 1
            p_mgmt = _state_probability(
                problem.mgmt_components, mgmt_bits, problem.up_probability
            )
            if p_mgmt == 0.0:
                continue
            mgmt_state = dict(zip(problem.mgmt_components, mgmt_bits))
            if problem.perfect:
                bits: tuple[bool, ...] = ()
            else:
                bits = tuple(
                    expr is TRUE
                    or (expr is not FALSE and expr.evaluate(mgmt_state))
                    for expr in (reduced[pair] for pair in pairs)
                )
            configuration = config_memo.get(bits, _UNSET)
            if configuration is _UNSET:
                know_bits = dict(zip(pairs, bits))
                know = (
                    _always_true
                    if problem.perfect
                    else lambda c, t: know_bits[(c, t)]
                )
                configuration = problem.graph.evaluate(
                    leaf_state, know
                ).configuration
                config_memo[bits] = configuration
                counters.fault_graph_evaluations += 1
            else:
                counters.knowledge_cache_hits += 1
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + p_app * p_mgmt
            )
        if tick is not None:
            tick(mgmt_states)


def _scan_chunk(
    problem: StateSpaceProblem, start: int, stop: int
) -> tuple[dict[frozenset[str] | None, float], ScanCounters]:
    """Worker entry point: scan one chunk into a fresh accumulator."""
    accumulator: dict[frozenset[str] | None, float] = {}
    counters = ScanCounters()
    _scan_range(problem, start, stop, accumulator, counters)
    return accumulator, counters


def _init_worker() -> None:
    # A terminal Ctrl-C signals the whole foreground process group;
    # workers killed mid-IPC can wedge the pool's teardown.  Workers
    # ignore SIGINT instead — the parent observes KeyboardInterrupt,
    # cancels queued chunks and shuts the pool down.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)


def dispatch_chunks(
    worker,
    problem: StateSpaceProblem,
    ranges: list[tuple[int, int]],
    jobs: int,
    counters: ScanCounters,
    reporter: ProgressReporter,
    total_states: int,
) -> list[dict[frozenset[str] | None, float]]:
    """Run ``worker(problem, start, stop)`` over ``ranges`` in a process
    pool, merging counters and emitting progress as chunks complete.

    Returns the partial accumulators in chunk-index order (progress is
    reported in completion order, results are merged deterministically).
    On any exception — including KeyboardInterrupt — queued chunks are
    cancelled and the pool is shut down without waiting, so interrupts
    stay responsive.
    """
    parts: list[dict[frozenset[str] | None, float] | None] = [None] * len(ranges)
    pool = ProcessPoolExecutor(max_workers=jobs, initializer=_init_worker)
    try:
        futures = [
            pool.submit(worker, problem, start, stop)
            for start, stop in ranges
        ]
        order = {future: i for i, future in enumerate(futures)}
        for future in as_completed(futures):
            part, part_counters = future.result()
            parts[order[future]] = part
            counters.merge(part_counters)
            reporter.emit("scan", counters.states_visited, total_states, counters)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return parts  # type: ignore[return-value]


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ≤ ``chunks`` contiguous, non-empty,
    near-equal ``(start, stop)`` slices, in index order."""
    chunks = max(1, min(chunks, total))
    base, extra = divmod(total, chunks)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``jobs`` request: 0 or negative means "all cores"."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def merge_accumulators(
    parts: list[dict[frozenset[str] | None, float]],
) -> dict[frozenset[str] | None, float]:
    """Sum partial configuration→probability maps in list order.

    Chunk-order merging keeps the floating-point summation order
    deterministic for a fixed chunking, so repeated runs at the same
    ``jobs`` agree exactly; across different ``jobs`` values results
    agree to summation reordering (≲ 1e-15 relative).
    """
    merged: dict[frozenset[str] | None, float] = {}
    for part in parts:
        for configuration, probability in part.items():
            merged[configuration] = merged.get(configuration, 0.0) + probability
    return merged


def enumerate_configurations(
    problem: StateSpaceProblem,
    *,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    counters: ScanCounters | None = None,
) -> dict[frozenset[str] | None, float]:
    """Exact configuration probabilities by full 2^N enumeration.

    Parameters
    ----------
    jobs:
        Worker processes for the outer application-state loop.  ``1``
        (default) runs fully in-process and reproduces the historical
        sequential scan bit-for-bit; ``0`` uses all cores.
    progress:
        Optional :data:`~repro.core.progress.ProgressCallback`; invoked
        in the calling process with phase ``"scan"`` and state-level
        granularity (chunk-level when parallel).
    counters:
        Optional :class:`~repro.core.progress.ScanCounters` to fill; a
        private instance is used when omitted.
    """
    if counters is None:
        counters = ScanCounters()
    jobs = resolve_jobs(jobs)
    reporter = ProgressReporter(progress)
    total_states = problem.state_count
    app_states = problem.app_state_count
    started = time.perf_counter()

    if jobs == 1 or app_states < 2:
        accumulator: dict[frozenset[str] | None, float] = {}

        def tick(states_covered: int) -> None:
            reporter.emit("scan", counters.states_visited, total_states, counters)

        _scan_range(
            problem, 0, app_states, accumulator, counters,
            tick=tick if reporter.active else None,
        )
    else:
        # Over-partition for load balance and progress granularity.
        ranges = chunk_ranges(app_states, jobs * 4)
        parts = dispatch_chunks(
            _scan_chunk, problem, ranges, jobs, counters, reporter,
            total_states,
        )
        accumulator = merge_accumulators(parts)

    counters.record_level("distinct_configurations", len(accumulator))
    counters.scan_seconds += time.perf_counter() - started
    reporter.emit(
        "scan", counters.states_visited, total_states, counters, force=True
    )
    return accumulator


_UNSET = object()


def _always_true(component: str, task: str) -> bool:
    return True
