"""The paper's literal state-space scan (§5, step 4).

Enumerates all 2^N up/down states of the unreliable tasks and
processors (application and management alike, plus any connectors given
a failure probability), evaluates knowledge-gated reconfiguration in
each state, and accumulates the probability of every distinct
operational configuration.

The loop is organised application-components-outer /
management-components-inner: the ``know`` expressions are partially
evaluated at the application state once, and the fault graph is
re-evaluated only for distinct knowledge-bit patterns.  This changes
nothing semantically — every one of the 2^N states is still visited —
but keeps the Python constant factor tolerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from collections.abc import Mapping

from repro.booleans.expr import Expr, FALSE, TRUE
from repro.ftlqn.fault_graph import FaultPropagationGraph


@dataclass(frozen=True)
class StateSpaceProblem:
    """Inputs shared by the enumerative and factored evaluators.

    Attributes
    ----------
    graph:
        The fault propagation graph of the application.
    know_exprs:
        ``know[c, t]`` boolean expressions keyed by (component, task);
        empty together with ``perfect=True`` for the idealised analysis.
    perfect:
        If True, every task knows everything (no MAMA model).
    app_components:
        Unreliable FTLQN components (graph leaves), in a fixed order.
    mgmt_components:
        Unreliable management-only variables (agent/manager tasks,
        their processors, and any connectors with a failure
        probability), in a fixed order.
    fixed_up / fixed_down:
        Variables pinned up (perfectly reliable) or down (certain to be
        failed).
    up_probability:
        Probability of being operational for every unreliable variable.
    """

    graph: FaultPropagationGraph
    know_exprs: Mapping[tuple[str, str], Expr]
    perfect: bool
    app_components: tuple[str, ...]
    mgmt_components: tuple[str, ...]
    fixed_up: frozenset[str]
    fixed_down: frozenset[str]
    up_probability: Mapping[str, float]
    #: Common-cause coverage: leaf component -> the event variables that
    #: take it down when they fire (event variable True = event has NOT
    #: occurred, keeping "up" semantics uniform).
    leaf_causes: Mapping[str, tuple[str, ...]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.leaf_causes is None:
            object.__setattr__(self, "leaf_causes", {})

    @property
    def state_count(self) -> int:
        """2^N over all unreliable entities (the paper's N)."""
        return 2 ** (len(self.app_components) + len(self.mgmt_components))

    def fixed_assignment(self) -> dict[str, bool]:
        assignment = {name: True for name in self.fixed_up}
        assignment.update({name: False for name in self.fixed_down})
        return assignment

    def _variable_value(self, name: str, app_state: Mapping[str, bool]) -> bool:
        if name in app_state:
            return app_state[name]
        return name not in self.fixed_down

    def leaf_state(self, app_state: Mapping[str, bool]) -> dict[str, bool]:
        """Total up/down state of the fault-graph leaves.

        A leaf is up iff its own variable is up and no common-cause
        event covering it has fired.
        """
        state: dict[str, bool] = {}
        for leaf in self.graph.leaves():
            name = leaf.name
            up = self._variable_value(name, app_state)
            if up:
                for event in self.leaf_causes.get(name, ()):
                    if not self._variable_value(event, app_state):
                        up = False
                        break
            state[name] = up
        return state


def _state_probability(
    names: tuple[str, ...],
    bits: tuple[bool, ...],
    up_probability: Mapping[str, float],
) -> float:
    probability = 1.0
    for name, up in zip(names, bits):
        p_up = up_probability[name]
        probability *= p_up if up else 1.0 - p_up
    return probability


def enumerate_configurations(
    problem: StateSpaceProblem,
) -> dict[frozenset[str] | None, float]:
    """Exact configuration probabilities by full 2^N enumeration."""
    accumulator: dict[frozenset[str] | None, float] = {}
    fixed = problem.fixed_assignment()
    pairs = list(problem.know_exprs)

    for app_bits in product((True, False), repeat=len(problem.app_components)):
        app_state = dict(zip(problem.app_components, app_bits))
        p_app = _state_probability(
            problem.app_components, app_bits, problem.up_probability
        )
        if p_app == 0.0:
            continue
        leaf_state = problem.leaf_state(app_state)

        substitution = {**fixed, **app_state}
        reduced: dict[tuple[str, str], Expr] = {
            pair: expr.substitute(substitution)
            for pair, expr in problem.know_exprs.items()
        }

        config_memo: dict[tuple[bool, ...], frozenset[str] | None] = {}
        for mgmt_bits in product(
            (True, False), repeat=len(problem.mgmt_components)
        ):
            p_mgmt = _state_probability(
                problem.mgmt_components, mgmt_bits, problem.up_probability
            )
            if p_mgmt == 0.0:
                continue
            mgmt_state = dict(zip(problem.mgmt_components, mgmt_bits))
            if problem.perfect:
                bits: tuple[bool, ...] = ()
            else:
                bits = tuple(
                    expr is TRUE
                    or (expr is not FALSE and expr.evaluate(mgmt_state))
                    for expr in (reduced[pair] for pair in pairs)
                )
            configuration = config_memo.get(bits, _UNSET)
            if configuration is _UNSET:
                know_bits = dict(zip(pairs, bits))
                know = (
                    _always_true
                    if problem.perfect
                    else lambda c, t: know_bits[(c, t)]
                )
                configuration = problem.graph.evaluate(
                    leaf_state, know
                ).configuration
                config_memo[bits] = configuration
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + p_app * p_mgmt
            )
    return accumulator


_UNSET = object()


def _always_true(component: str, task: str) -> bool:
    return True
