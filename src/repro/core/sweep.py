"""Shared-cache sweep engine for multi-scenario studies.

The paper's evaluation is inherently multi-scenario: §6's sensitivity
studies and Figure 11's reward-weight curves solve the *same* layered
model dozens of times under varying failure probabilities, reward
weights and management architectures.  Building a fresh
:class:`~repro.core.performability.PerformabilityAnalyzer` per point
repeats work that depends only on structure, never on the scenario:

* the fault propagation graph and the ``know``-expression table are
  functions of the (FTLQN, MAMA) pair alone — one derivation per
  architecture covers every probability point;
* the LQN solution of a configuration is a function of (FTLQN,
  configuration) alone — across a whole sweep, the number of LQN solves
  collapses to the number of *distinct configurations in the sweep*
  (seven for every §6.3 case), not points × configurations;
* the configuration-probability map is a function of (structure,
  failure probabilities, common causes) — points that differ only in
  reward weights (Figure 11's whole x-axis) share one scan.

:class:`SweepEngine` owns the three caches and evaluates a list of
:class:`SweepPoint` scenario overrides against them.  Point results are
bit-identical to per-point analyzer runs (the scan is deterministic for
a fixed ``jobs`` value, LQN solves are deterministic, and the expected
reward folds the cached probability map in its original iteration
order); the equivalence is asserted by ``tests/core/test_sweep_engine``
across methods and ``jobs`` values.

Points are evaluated sequentially so every point sees the caches warmed
by its predecessors; each point's state-space scan dispatches over the
``jobs``/``progress`` machinery of :mod:`repro.core.enumeration`, and
the engine reports a coarse ``"sweep"`` progress phase between points.

One engine may also be shared by concurrent threads — the analysis
service (:mod:`repro.service`) runs every request of a model against
one warm engine.  The three caches are protected by an engine lock plus
single-flight gates: when several threads miss on the same scan key or
the same configuration at once, exactly one performs the work while the
others wait and take a cache hit, so results stay bit-identical to a
sequential run and the counters stay coherent (``lqn_solves`` still
equals the number of distinct configurations solved engine-wide, with
no lost updates).
"""

from __future__ import annotations

import csv
import io
import json
import threading
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from repro.core.bounded import DEFAULT_EPSILON
from repro.core.dependency import CommonCause
from repro.core.enumeration import normalize_method, resolve_jobs
from repro.core.performability import (
    AnalysisStructure,
    BatchSolver,
    LQNCoordinator,
    PerformabilityAnalyzer,
    WarmStartIndex,
    derive_structure,
)
from repro.core.progress import (
    ProgressCallback,
    ProgressReporter,
    ScanCounters,
)
from repro.core.results import PerformabilityResult
from repro.core.rewards import RewardFunction, weighted_throughput_reward
from repro.errors import ModelError, SerializationError
from repro.ftlqn.model import FTLQNModel
from repro.lqn.results import LQNResults
from repro.mama.model import MAMAModel

#: Scan-cache key: (architecture key, method, ε, sorted failure-prob
#: items, common-cause events).  Everything the configuration
#: probabilities depend on besides structure, which the key's
#: architecture entry stands in for.  ε is pinned to 0.0 for every
#: exact method (which ignores it), so exact runs share cache entries
#: across differing ``epsilon`` arguments while ``bounded`` runs with
#: different targets stay distinct.
_ScanKey = tuple[
    str | None,
    str,
    float,
    tuple[tuple[str, float], ...],
    tuple[CommonCause, ...],
]


@dataclass(frozen=True)
class SweepPoint:
    """One scenario of a sweep, as overrides on the engine's baseline.

    Attributes
    ----------
    name:
        Unique label of the point (used in reports and exports).
    architecture:
        Key into the engine's ``architectures`` mapping, or ``None``
        for the perfect-knowledge (no-MAMA) analysis.
    failure_probs:
        Per-component failure probabilities *overlaid* on the engine's
        base map (point entries win).  ``None`` keeps the base map
        unchanged.  To make a baseline-unreliable component perfectly
        reliable in one point, override it with ``0.0`` — that pins it
        up, exactly like omitting it from a fresh analyzer's map.
    common_causes:
        Common-cause events for this point; ``None`` keeps the engine's
        base events, an empty tuple removes them.
    weights:
        Reward weights per reference task
        (:func:`~repro.core.rewards.weighted_throughput_reward`);
        ``None`` keeps the engine's base reward function.
    """

    name: str
    architecture: str | None = None
    failure_probs: Mapping[str, float] | None = None
    common_causes: tuple[CommonCause, ...] | None = None
    weights: Mapping[str, float] | None = None

    def to_dict(self) -> dict:
        """Canonical JSON form.  ``None`` overrides are omitted, so the
        document round-trips the "keep the base" / "override with
        empty" distinction exactly."""
        document: dict = {"name": self.name, "architecture": self.architecture}
        if self.failure_probs is not None:
            document["failure_probs"] = {
                str(name): float(value)
                for name, value in sorted(self.failure_probs.items())
            }
        if self.common_causes is not None:
            document["common_causes"] = [
                {
                    "name": cause.name,
                    "probability": float(cause.probability),
                    "components": list(cause.components),
                }
                for cause in self.common_causes
            ]
        if self.weights is not None:
            document["weights"] = {
                str(name): float(value)
                for name, value in sorted(self.weights.items())
            }
        return document

    @classmethod
    def from_dict(cls, document: Mapping) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        causes = None
        if "common_causes" in document:
            causes = tuple(
                CommonCause(
                    name=str(item["name"]),
                    probability=float(item["probability"]),
                    components=tuple(str(c) for c in item["components"]),
                )
                for item in document["common_causes"]
            )
        architecture = document.get("architecture")
        return cls(
            name=str(document["name"]),
            architecture=None if architecture is None else str(architecture),
            failure_probs=(
                {
                    str(name): float(value)
                    for name, value in document["failure_probs"].items()
                }
                if "failure_probs" in document
                else None
            ),
            common_causes=causes,
            weights=(
                {
                    str(name): float(value)
                    for name, value in document["weights"].items()
                }
                if "weights" in document
                else None
            ),
        )


@dataclass(frozen=True)
class SweepPointResult:
    """One evaluated sweep point.

    ``failure_probs`` is the *effective* (base + overlay) map the point
    was solved with; ``scan_cached`` records whether the configuration
    probabilities came from the engine's cross-point scan cache rather
    than a fresh state-space scan.
    """

    point: SweepPoint
    failure_probs: Mapping[str, float]
    result: PerformabilityResult
    scan_cached: bool = False

    @property
    def name(self) -> str:
        return self.point.name

    @property
    def architecture(self) -> str | None:
        return self.point.architecture

    @property
    def expected_reward(self) -> float:
        return self.result.expected_reward

    @property
    def failed_probability(self) -> float:
        return self.result.failed_probability

    def to_dict(self) -> dict:
        """Full-fidelity canonical JSON form (the campaign store's
        per-point payload; :meth:`SweepResult.to_json_dict` renders the
        lighter export view)."""
        return {
            "point": self.point.to_dict(),
            "failure_probs": {
                str(name): float(value)
                for name, value in sorted(self.failure_probs.items())
            },
            "result": self.result.to_dict(),
            "scan_cached": bool(self.scan_cached),
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "SweepPointResult":
        """Rebuild an evaluated point from :meth:`to_dict` output."""
        return cls(
            point=SweepPoint.from_dict(document["point"]),
            failure_probs={
                str(name): float(value)
                for name, value in document["failure_probs"].items()
            },
            result=PerformabilityResult.from_dict(document["result"]),
            scan_cached=bool(document.get("scan_cached", False)),
        )


@dataclass(frozen=True)
class SweepResult:
    """All evaluated points plus the sweep-wide aggregated counters.

    ``counters`` merges every point's :class:`ScanCounters`;
    ``counters.lqn_solves`` therefore equals the number of distinct
    configurations solved across the *whole* sweep (the shared-cache
    win), ``counters.distinct_configurations`` the number of distinct
    configurations (failed included) seen across all points, and
    ``counters.sweep_points`` / ``counters.scan_cache_hits`` the point
    count and cross-point scan-cache effectiveness.
    """

    points: tuple[SweepPointResult, ...]
    counters: ScanCounters
    method: str
    jobs: int = 1

    def point(self, name: str) -> SweepPointResult:
        """Look up one evaluated point by its label."""
        for entry in self.points:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def series(self, architecture: str | None) -> tuple[SweepPointResult, ...]:
        """All points of one architecture, in evaluation order."""
        return tuple(
            entry for entry in self.points
            if entry.architecture == architecture
        )

    @property
    def lqn_cache_hit_rate(self) -> float:
        """Fraction of configuration evaluations served from the shared
        LQN cache (the headline cross-point saving)."""
        total = self.counters.lqn_solves + self.counters.lqn_cache_hits
        return self.counters.lqn_cache_hits / total if total else 0.0

    def to_json_dict(self, *, include_records: bool = True) -> dict:
        """Plain-data rendering for ``json.dump`` (artifact export)."""
        points = []
        for entry in self.points:
            document: dict = {
                "name": entry.name,
                "architecture": entry.architecture,
                "expected_reward": float(entry.expected_reward),
                "failed_probability": float(entry.failed_probability),
                "scan_cached": entry.scan_cached,
                "failure_probs": dict(entry.failure_probs),
            }
            if entry.point.weights is not None:
                document["weights"] = dict(entry.point.weights)
            if include_records:
                # One record schema everywhere: exports share
                # ConfigurationRecord.to_dict with campaign-store rows.
                document["records"] = [
                    record.to_dict() for record in entry.result.records
                ]
            points.append(document)
        return {
            "method": self.method,
            "jobs": self.jobs,
            "counters": self.counters.as_dict(),
            "lqn_cache_hit_rate": self.lqn_cache_hit_rate,
            "points": points,
        }

    def to_dict(self) -> dict:
        """Full-fidelity canonical JSON form: every point's complete
        :class:`~repro.core.results.PerformabilityResult` plus the
        aggregated counters.  :meth:`from_dict` reconstructs an equal
        :class:`SweepResult`; :meth:`to_json_dict` is the lighter
        human-facing export."""
        return {
            "points": [entry.to_dict() for entry in self.points],
            "counters": self.counters.to_dict(),
            "method": self.method,
            "jobs": int(self.jobs),
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "SweepResult":
        """Rebuild a sweep result from :meth:`to_dict` output."""
        return cls(
            points=tuple(
                SweepPointResult.from_dict(entry)
                for entry in document["points"]
            ),
            counters=ScanCounters.from_dict(document["counters"]),
            method=str(document["method"]),
            jobs=int(document.get("jobs", 1)),
        )

    def to_json(self, *, indent: int | None = 2,
                include_records: bool = True) -> str:
        return json.dumps(
            self.to_json_dict(include_records=include_records),
            indent=indent,
        )

    def to_csv(self) -> str:
        """One row per point: the headline scalars plus the
        probability-weighted average throughput of every reference
        task seen in the sweep."""
        tasks = sorted({
            task
            for entry in self.points
            for record in entry.result.records
            for task in record.throughputs
        })
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            ["name", "architecture", "expected_reward",
             "failed_probability", "scan_cached"]
            + [f"avg_throughput_{task}" for task in tasks]
        )
        for entry in self.points:
            writer.writerow(
                [
                    entry.name,
                    entry.architecture or "perfect",
                    repr(float(entry.expected_reward)),
                    repr(float(entry.failed_probability)),
                    int(entry.scan_cached),
                ]
                + [
                    repr(float(entry.result.average_throughput(task)))
                    for task in tasks
                ]
            )
        return buffer.getvalue()


class SweepEngine:
    """Evaluate many scenario points over shared structure-derived caches.

    Parameters
    ----------
    ftlqn:
        The layered application model, common to every point.
    architectures:
        Named MAMA architecture variants points may select via
        :attr:`SweepPoint.architecture`.  The perfect-knowledge
        analysis (``architecture=None``) is always available.
    base_failure_probs:
        Baseline failure-probability map; each point overlays its own
        entries on top.
    base_common_causes / base_reward:
        Baseline common-cause events and reward function, used by
        points that do not override them.
    lqn_warm_start:
        Opt-in: seed each uncached configuration's layered solve from
        the cached result of its nearest already-solved configuration
        (Hamming distance over component sets).  The fixed point
        reached is the same up to the solver tolerance, but not
        bit-identical to a cold solve — and it depends on cache
        history, i.e. on point order — so the default (``False``)
        preserves the engine's bit-exact equivalence with per-point
        analyzers.
    lqn_solver:
        Optional :data:`~repro.core.performability.BatchSolver`
        replacing ``solve_lqn_batch`` for every LQN solve issued
        through this engine (the analysis service injects its
        micro-batching queue so concurrent requests coalesce).

    The engine owns three caches, all keyed only by what the cached
    value actually depends on:

    * ``structure`` — one :class:`AnalysisStructure` (fault graph +
      ``know`` table) per architecture key;
    * ``scan`` — one configuration→probability map per (architecture,
      method, effective failure probs, common causes);
    * ``lqn`` — one :class:`~repro.lqn.results.LQNResults` per distinct
      configuration, shared across *all* points and architectures.
    """

    def __init__(
        self,
        ftlqn: FTLQNModel,
        architectures: Mapping[str, MAMAModel] | None = None,
        *,
        base_failure_probs: Mapping[str, float] | None = None,
        base_common_causes: Sequence[CommonCause] = (),
        base_reward: RewardFunction | None = None,
        lqn_warm_start: bool = False,
        lqn_solver: BatchSolver | None = None,
    ):
        self._ftlqn = ftlqn.validated()
        self._ftlqn_names = frozenset(ftlqn.component_names())
        self._architectures: dict[str, MAMAModel] = dict(architectures or {})
        self._base_failure_probs = dict(base_failure_probs or {})
        self._base_common_causes = tuple(base_common_causes)
        self._base_reward = base_reward
        self._structures: dict[str | None, AnalysisStructure] = {}
        self._scan_cache: dict[
            _ScanKey, dict[frozenset[str] | None, float]
        ] = {}
        self._lqn_cache: dict[frozenset[str], LQNResults] = {}
        self._warm_index = (
            WarmStartIndex(self._lqn_cache) if lqn_warm_start else None
        )
        # Thread-safe cache protocol (see the module docstring): one
        # re-entrant engine lock over the structure/scan tables, a
        # single-flight latch table for in-progress scans, and a
        # coordinator playing the same role for the LQN cache.
        self._lock = threading.RLock()
        self._scan_inflight: dict[_ScanKey, threading.Event] = {}
        self._coordinator = LQNCoordinator(
            self._ftlqn, self._lqn_cache, solver=lqn_solver
        )

    @property
    def architectures(self) -> Mapping[str, MAMAModel]:
        return dict(self._architectures)

    def add_architecture(self, name: str, mama: MAMAModel) -> None:
        """Register one more architecture variant after construction.

        Re-registering an existing key with a different model is
        rejected — the structure cache is keyed by name, so silently
        swapping the model would serve stale structures.
        """
        with self._lock:
            if name in self._architectures:
                if self._architectures[name] is not mama:
                    raise ModelError(
                        f"architecture {name!r} is already registered with "
                        "a different model"
                    )
                return
            self._architectures[name] = mama

    @property
    def lqn_cache(self) -> Mapping[frozenset[str], LQNResults]:
        """The shared cross-point configuration→LQN-results cache."""
        return self._lqn_cache

    def cache_stats(self) -> dict[str, int]:
        """Current sizes of the engine's shared caches (a consistent
        snapshot, taken under the engine lock; the ``/stats`` endpoint
        of the analysis service aggregates these per warm engine)."""
        with self._lock:
            return {
                "architectures": len(self._architectures),
                "structures": len(self._structures),
                "scan_entries": len(self._scan_cache),
                "lqn_entries": len(self._lqn_cache),
            }

    def structure_for(self, architecture: str | None) -> AnalysisStructure:
        """The (cached) analysis structure of one architecture key.

        Derivation happens under the engine lock, so concurrent callers
        racing the same uncached architecture derive it once (it is a
        one-off per architecture, so serialising it is cheap and keeps
        the invariant that every caller sees the same instance).
        """
        with self._lock:
            structure = self._structures.get(architecture)
            if structure is None:
                structure = derive_structure(
                    self._ftlqn, self._mama_for(architecture)
                )
                self._structures[architecture] = structure
            return structure

    def _mama_for(self, architecture: str | None) -> MAMAModel | None:
        if architecture is None:
            return None
        try:
            return self._architectures[architecture]
        except KeyError:
            raise ModelError(
                f"unknown architecture {architecture!r}; available: "
                f"{sorted(self._architectures)} (None = perfect knowledge)"
            ) from None

    def effective_failure_probs(self, point: SweepPoint) -> dict[str, float]:
        """The base-plus-overlay failure map a point is solved with
        (public wrapper over the internal overlay logic)."""
        return self._effective_probs(point)

    def _effective_probs(self, point: SweepPoint) -> dict[str, float]:
        """Base map overlaid with the point's overrides.

        The base map may be a superset across architecture variants
        (e.g. name every manager of every variant); entries outside the
        point's component universe are dropped so switching
        architectures never trips the analyzer's unknown-component
        check.  The point's *own* ``failure_probs`` are kept verbatim —
        a typo there still fails loudly.
        """
        structure = self.structure_for(point.architecture)
        universe = (
            self._ftlqn_names
            | structure.mama_names
            | structure.connector_names
        )
        effective = {
            name: probability
            for name, probability in self._base_failure_probs.items()
            if name in universe
        }
        effective.update(point.failure_probs or {})
        return effective

    def analyzer_for(self, point: SweepPoint) -> PerformabilityAnalyzer:
        """A per-point analyzer wired to the engine's shared caches.

        Exposed for equivalence testing and advanced use; :meth:`run`
        is the normal entry point.
        """
        reward = self._base_reward
        if point.weights is not None:
            reward = weighted_throughput_reward(dict(point.weights))
        causes = (
            point.common_causes
            if point.common_causes is not None
            else self._base_common_causes
        )
        return PerformabilityAnalyzer(
            self._ftlqn,
            self._mama_for(point.architecture),
            failure_probs=self._effective_probs(point),
            reward=reward,
            common_causes=causes,
            structure=self.structure_for(point.architecture),
            lqn_coordinator=self._coordinator,
            warm_index=self._warm_index,
        )

    def scan_for(
        self,
        point: SweepPoint,
        *,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> tuple[dict[frozenset[str] | None, float], bool]:
        """The configuration→probability map of one point, via the
        engine's cross-point scan cache.

        Returns ``(probabilities, scan_cached)`` where ``scan_cached``
        says whether the map came from the cache (in which case
        ``counters.scan_cache_hits`` is incremented) rather than a
        fresh state-space scan.  Used by :meth:`run` for each point and
        by the optimizer's bounds fast path, which needs a candidate's
        configuration support without paying for its LQN solves.

        Scans are single-flight across threads: the first thread to
        miss on a key claims it and scans outside the engine lock;
        threads racing the same key wait on its latch and then take the
        cache hit, so one fresh scan happens per distinct key however
        many threads ask.
        """
        method = normalize_method(method)
        if counters is None:
            counters = ScanCounters()
        key: _ScanKey = (
            point.architecture,
            method,
            epsilon if method == "bounded" else 0.0,
            tuple(sorted(self._effective_probs(point).items())),
            (
                point.common_causes
                if point.common_causes is not None
                else self._base_common_causes
            ),
        )
        while True:
            with self._lock:
                probabilities = self._scan_cache.get(key)
                if probabilities is not None:
                    counters.scan_cache_hits += 1
                    return probabilities, True
                latch = self._scan_inflight.get(key)
                if latch is None:
                    latch = threading.Event()
                    self._scan_inflight[key] = latch
                    break
            # Someone else is scanning this key; wait and re-check.  If
            # their scan failed, the re-check misses and we claim it.
            latch.wait()
        try:
            probabilities = self.analyzer_for(
                point
            ).configuration_probabilities(
                method=method, jobs=jobs, epsilon=epsilon,
                progress=progress, counters=counters,
            )
            with self._lock:
                self._scan_cache[key] = probabilities
        finally:
            with self._lock:
                self._scan_inflight.pop(key, None)
                latch.set()
        return probabilities, False

    def run(
        self,
        points: Iterable[SweepPoint],
        *,
        method: str = "factored",
        jobs: int = 1,
        epsilon: float = DEFAULT_EPSILON,
        progress: ProgressCallback | None = None,
        counters: ScanCounters | None = None,
    ) -> SweepResult:
        """Evaluate every point and return the aggregated result.

        ``method``, ``jobs``, ``epsilon`` and ``progress`` behave as in
        :meth:`PerformabilityAnalyzer.solve` and apply to each point's
        scan/LQN phases; between points the callback additionally
        receives coarse phase-``"sweep"`` events.  ``counters``
        (optional) is filled with the sweep-wide aggregate.
        """
        points = list(points)
        names = [point.name for point in points]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ModelError(
                f"sweep point names must be unique; duplicated: {duplicates}"
            )
        # Canonicalise up front so aliases ("interp") share scan-cache
        # entries with their canonical method across run() calls.
        method = normalize_method(method)
        jobs = resolve_jobs(jobs)
        if counters is None:
            counters = ScanCounters()
        reporter = ProgressReporter(progress)
        evaluated: list[SweepPointResult] = []
        distinct: set[frozenset[str] | None] = set()

        for index, point in enumerate(points):
            reporter.emit("sweep", index, len(points), counters, force=True)
            analyzer = self.analyzer_for(point)
            point_counters = ScanCounters()
            probabilities, scan_cached = self.scan_for(
                point, method=method, jobs=jobs, epsilon=epsilon,
                progress=progress, counters=point_counters,
            )
            result = analyzer.evaluate_probabilities(
                probabilities, method=method, jobs=jobs, progress=progress,
                counters=point_counters,
            )
            counters.merge(point_counters)
            counters.sweep_points += 1
            distinct.update(probabilities)
            evaluated.append(
                SweepPointResult(
                    point=point,
                    failure_probs=self._effective_probs(point),
                    result=result,
                    scan_cached=scan_cached,
                )
            )

        counters.record_level("distinct_configurations", len(distinct))
        reporter.emit(
            "sweep", len(points), len(points), counters, force=True
        )
        return SweepResult(
            points=tuple(evaluated),
            counters=counters,
            method=method,
            jobs=jobs,
        )


# ----------------------------------------------------------------------
# Sweep-spec parsing (the JSON "points"/"base" sections; file loading
# lives in the CLI, which resolves the model/architecture paths).


def causes_from_documents(items: object) -> tuple[CommonCause, ...]:
    """Parse a JSON ``common_causes`` array into events.

    Raises :class:`SerializationError` on any shape problem, so CLI
    users get a one-line message instead of a traceback.
    """
    if not isinstance(items, list):
        raise SerializationError(
            "\"common_causes\" must be an array of "
            "{name, probability, components} objects"
        )
    causes = []
    for item in items:
        if not isinstance(item, dict):
            raise SerializationError(
                f"common cause entries must be objects, got {item!r}"
            )
        missing = [
            key for key in ("name", "probability", "components")
            if key not in item
        ]
        if missing:
            raise SerializationError(
                f"common cause entry is missing {missing}: {item!r}"
            )
        unknown = sorted(
            set(item) - {"name", "probability", "components"}
        )
        if unknown:
            raise SerializationError(
                f"common cause entry has unknown keys {unknown}: {item!r}"
            )
        try:
            causes.append(
                CommonCause(
                    name=str(item["name"]),
                    probability=float(item["probability"]),
                    components=tuple(
                        str(c) for c in item["components"]
                    ),
                )
            )
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed common cause {item!r}: {exc}"
            ) from exc
    return tuple(causes)


def probs_from_document(document: object, *, label: str) -> dict[str, float]:
    """Parse a flat ``{"component": probability}`` JSON object."""
    if not isinstance(document, dict):
        raise SerializationError(f"{label} must be a JSON object")
    probs = {}
    for name, value in document.items():
        try:
            probs[str(name)] = float(value)
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"{label}: probability of {name!r} must be a number, "
                f"got {value!r}"
            ) from exc
    return probs


_POINT_KEYS = frozenset(
    {"name", "architecture", "failure_probs", "common_causes", "weights"}
)


def points_from_documents(items: object) -> list[SweepPoint]:
    """Parse a sweep spec's JSON ``points`` array.

    Each entry is an object with a required ``name`` and the optional
    override fields of :class:`SweepPoint`; unknown keys are rejected.
    """
    if not isinstance(items, list) or not items:
        raise SerializationError(
            "sweep spec needs a non-empty \"points\" array"
        )
    points = []
    for item in items:
        if not isinstance(item, dict):
            raise SerializationError(
                f"sweep points must be objects, got {item!r}"
            )
        if "name" not in item:
            raise SerializationError(f"sweep point is missing \"name\": {item!r}")
        unknown = sorted(set(item) - _POINT_KEYS)
        if unknown:
            raise SerializationError(
                f"sweep point {item.get('name')!r} has unknown keys "
                f"{unknown}; allowed: {sorted(_POINT_KEYS)}"
            )
        architecture = item.get("architecture")
        if architecture is not None:
            architecture = str(architecture)
        failure_probs = None
        if "failure_probs" in item:
            failure_probs = probs_from_document(
                item["failure_probs"],
                label=f"point {item['name']!r} failure_probs",
            )
        causes = None
        if "common_causes" in item:
            causes = causes_from_documents(item["common_causes"])
        weights = None
        if "weights" in item:
            weights = probs_from_document(
                item["weights"], label=f"point {item['name']!r} weights"
            )
        points.append(
            SweepPoint(
                name=str(item["name"]),
                architecture=architecture,
                failure_probs=failure_probs,
                common_causes=causes,
                weights=weights,
            )
        )
    return points
