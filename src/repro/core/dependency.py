"""Common-cause failure events (dependent failures).

The paper's earlier work [10] models "failure dependency factors" that
correlate individual failures; the natural library form is the
*common-cause event*: a named event with its own occurrence probability
that, when it fires, takes down a whole set of components at once (a
shared power feed, a rack switch, a bad deploy touching every replica).

A :class:`CommonCause` integrates into the analysis as one more
independent boolean variable whose "up" polarity means *the event has
not occurred*:

* every affected fault-graph leaf is up only while its own variable is
  up **and** every covering event is quiet;
* every ``know`` expression has the affected component variables
  rewritten to ``component ∧ ¬event`` (via :meth:`Expr.replace`), so a
  common cause that knocks out an agent silently degrades coverage too.

Both state-space evaluators handle the extra variables untouched, and
their exact agreement is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class CommonCause:
    """A shared failure mode.

    Parameters
    ----------
    name:
        Unique event name (its own namespace: must not collide with any
        component or connector).
    probability:
        Probability that the event has occurred (is active) in the
        steady state.
    components:
        Names of the components (tasks, processors, or connectors) the
        event takes down.
    """

    name: str
    probability: float
    components: tuple[str, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ModelError(
                f"common cause {self.name!r}: probability must be in [0, 1]"
            )
        if not self.components:
            raise ModelError(
                f"common cause {self.name!r}: must affect at least one component"
            )
        if len(set(self.components)) != len(self.components):
            raise ModelError(
                f"common cause {self.name!r}: duplicate affected components"
            )
