"""Factored configuration-probability evaluator (the §7 conjecture).

The paper notes that full 2^N enumeration limits scalability and that
"much more efficient pruning appears to be possible, using a
non-state-space-based approach".  This module implements one:

* enumerate only the application-component states (2^a, the leaves of
  the fault propagation graph);
* in each application state, discover *which* knowledge bits the
  reconfiguration decision actually consults, by evaluating the fault
  graph with a probing ``know`` function and branching only on bits
  that are genuinely queried and genuinely uncertain (an adaptive
  decision tree whose leaves are configurations);
* weigh each decision-tree leaf by the exact probability of its
  knowledge-literal conjunction over the management variables, computed
  on a BDD.

The result is bit-for-bit equal to the enumerative method (this is
property-tested) while visiting exponentially fewer states when the
management architecture is large.

Parallelism mirrors :mod:`repro.core.enumeration`: the 2^a application
scan is index-addressable, so ``jobs > 1`` splits it into contiguous
index chunks dispatched over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Each worker builds
its own private BDD manager for the management variables, returns a
partial accumulator plus counters, and the parent merges partials in
chunk order.  ``jobs=1`` keeps the historical single-pass behaviour
(one shared BDD manager across all application states) bit-for-bit.
"""

from __future__ import annotations

import time

from repro.booleans.bdd import BDD, ONE
from repro.booleans.expr import Expr, FALSE, TRUE
from repro.core.enumeration import (
    StateSpaceProblem,
    _state_probability,
    app_bits_for_index,
    chunk_ranges,
    dispatch_chunks,
    merge_accumulators,
    resolve_jobs,
)
from repro.core.progress import ProgressCallback, ProgressReporter, ScanCounters


class _NeedBit(Exception):
    """Raised by the probing know function on an undetermined bit."""

    def __init__(self, pair: tuple[str, str]):
        super().__init__(pair)
        self.pair = pair


def _factored_range(
    problem: StateSpaceProblem,
    start: int,
    stop: int,
    accumulator: dict[frozenset[str] | None, float],
    counters: ScanCounters,
    manager: BDD | None = None,
    tick=None,
) -> None:
    """Scan application states ``[start, stop)`` into ``accumulator``.

    ``manager`` is the BDD manager over the management variables; a
    private one is created when omitted (the parallel path).  ``tick``
    is called after each application state (sequential progress only).
    """
    fixed = problem.fixed_assignment()
    width = len(problem.app_components)
    mgmt_states = problem.mgmt_state_count

    if manager is None:
        manager = BDD(sorted(problem.mgmt_components))
    up_probs = {
        name: problem.up_probability[name] for name in problem.mgmt_components
    }

    for index in range(start, stop):
        app_bits = app_bits_for_index(index, width)
        app_state = dict(zip(problem.app_components, app_bits))
        counters.app_states_visited += 1
        counters.states_visited += mgmt_states
        p_app = _state_probability(
            problem.app_components, app_bits, problem.up_probability
        )
        if p_app == 0.0:
            if tick is not None:
                tick()
            continue
        leaf_state = problem.leaf_state(app_state)

        if problem.perfect:
            configuration = problem.graph.evaluate(
                leaf_state, lambda c, t: True
            ).configuration
            counters.fault_graph_evaluations += 1
            counters.decision_leaves += 1
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + p_app
            )
            if tick is not None:
                tick()
            continue

        substitution = {**fixed, **app_state}
        reduced: dict[tuple[str, str], Expr] = {
            pair: expr.substitute(substitution)
            for pair, expr in problem.know_exprs.items()
        }
        bdd_cache: dict[tuple[str, str], int] = {}

        def bdd_of(pair: tuple[str, str]) -> int:
            node = bdd_cache.get(pair)
            if node is None:
                node = manager.from_expr(reduced[pair])
                bdd_cache[pair] = node
            return node

        leaves: list[tuple[dict[tuple[str, str], bool], frozenset[str] | None]] = []
        assignment: dict[tuple[str, str], bool] = {}

        def probe(component: str, task: str) -> bool:
            pair = (component, task)
            if pair in assignment:
                return assignment[pair]
            expr = reduced.get(pair)
            if expr is None:
                # A pair never computed from the MAMA model: the task
                # has no way to learn this component's state.
                return False
            # Identity checks, not ``==``: the constants are pickle-stable
            # singletons (see ``_Constant.__reduce__``), and this is the
            # same fast path ``enumeration._scan_range`` uses, so both
            # evaluators stay in lockstep across process boundaries.
            if expr is TRUE:
                return True
            if expr is FALSE:
                return False
            raise _NeedBit(pair)

        def explore() -> None:
            counters.fault_graph_evaluations += 1
            try:
                configuration = problem.graph.evaluate(
                    leaf_state, probe
                ).configuration
            except _NeedBit as need:
                for value in (True, False):
                    assignment[need.pair] = value
                    explore()
                del assignment[need.pair]
                return
            leaves.append((dict(assignment), configuration))

        explore()
        counters.decision_leaves += len(leaves)

        for condition, configuration in leaves:
            node = ONE
            for pair, value in condition.items():
                pair_node = bdd_of(pair)
                if not value:
                    pair_node = manager.negate(pair_node)
                node = manager.apply_and(node, pair_node)
            probability = manager.probability(node, up_probs)
            if probability == 0.0:
                continue
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + p_app * probability
            )
        if tick is not None:
            tick()


def _factored_chunk(
    problem: StateSpaceProblem, start: int, stop: int
) -> tuple[dict[frozenset[str] | None, float], ScanCounters]:
    """Worker entry point: scan one chunk with a private BDD manager."""
    accumulator: dict[frozenset[str] | None, float] = {}
    counters = ScanCounters()
    _factored_range(problem, start, stop, accumulator, counters)
    return accumulator, counters


def factored_configurations(
    problem: StateSpaceProblem,
    *,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    counters: ScanCounters | None = None,
) -> dict[frozenset[str] | None, float]:
    """Exact configuration probabilities without enumerating management
    states; see the module docstring for the algorithm.

    ``jobs``, ``progress`` and ``counters`` behave as in
    :func:`repro.core.enumeration.enumerate_configurations`; progress
    ``completed``/``total`` count covered raw states (application
    states × 2^m), so both methods report against the same 2^N total.
    """
    if counters is None:
        counters = ScanCounters()
    jobs = resolve_jobs(jobs)
    reporter = ProgressReporter(progress)
    total_states = problem.state_count
    app_states = problem.app_state_count
    started = time.perf_counter()

    if jobs == 1 or app_states < 2:
        accumulator: dict[frozenset[str] | None, float] = {}
        manager = BDD(sorted(problem.mgmt_components))

        def tick() -> None:
            reporter.emit("scan", counters.states_visited, total_states, counters)

        _factored_range(
            problem, 0, app_states, accumulator, counters,
            manager=manager, tick=tick if reporter.active else None,
        )
    else:
        ranges = chunk_ranges(app_states, jobs * 4)
        parts = dispatch_chunks(
            _factored_chunk, problem, ranges, jobs, counters, reporter,
            total_states,
        )
        accumulator = merge_accumulators(parts)

    counters.record_level("distinct_configurations", len(accumulator))
    counters.scan_seconds += time.perf_counter() - started
    reporter.emit(
        "scan", counters.states_visited, total_states, counters, force=True
    )
    return accumulator
