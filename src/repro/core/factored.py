"""Factored configuration-probability evaluator (the §7 conjecture).

The paper notes that full 2^N enumeration limits scalability and that
"much more efficient pruning appears to be possible, using a
non-state-space-based approach".  This module implements one:

* enumerate only the application-component states (2^a, the leaves of
  the fault propagation graph);
* in each application state, discover *which* knowledge bits the
  reconfiguration decision actually consults, by evaluating the fault
  graph with a probing ``know`` function and branching only on bits
  that are genuinely queried and genuinely uncertain (an adaptive
  decision tree whose leaves are configurations);
* weigh each decision-tree leaf by the exact probability of its
  knowledge-literal conjunction over the management variables, computed
  on a BDD.

The result is bit-for-bit equal to the enumerative method (this is
property-tested) while visiting exponentially fewer states when the
management architecture is large.
"""

from __future__ import annotations

from itertools import product

from repro.booleans.bdd import BDD, ONE
from repro.booleans.expr import Expr, FALSE, TRUE
from repro.core.enumeration import StateSpaceProblem, _state_probability


class _NeedBit(Exception):
    """Raised by the probing know function on an undetermined bit."""

    def __init__(self, pair: tuple[str, str]):
        super().__init__(pair)
        self.pair = pair


def factored_configurations(
    problem: StateSpaceProblem,
) -> dict[frozenset[str] | None, float]:
    """Exact configuration probabilities without enumerating management
    states; see the module docstring for the algorithm."""
    accumulator: dict[frozenset[str] | None, float] = {}
    fixed = problem.fixed_assignment()

    manager = BDD(sorted(problem.mgmt_components))
    up_probs = {
        name: problem.up_probability[name] for name in problem.mgmt_components
    }

    for app_bits in product((True, False), repeat=len(problem.app_components)):
        app_state = dict(zip(problem.app_components, app_bits))
        p_app = _state_probability(
            problem.app_components, app_bits, problem.up_probability
        )
        if p_app == 0.0:
            continue
        leaf_state = problem.leaf_state(app_state)

        if problem.perfect:
            configuration = problem.graph.evaluate(
                leaf_state, lambda c, t: True
            ).configuration
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + p_app
            )
            continue

        substitution = {**fixed, **app_state}
        reduced: dict[tuple[str, str], Expr] = {
            pair: expr.substitute(substitution)
            for pair, expr in problem.know_exprs.items()
        }
        bdd_cache: dict[tuple[str, str], int] = {}

        def bdd_of(pair: tuple[str, str]) -> int:
            node = bdd_cache.get(pair)
            if node is None:
                node = manager.from_expr(reduced[pair])
                bdd_cache[pair] = node
            return node

        leaves: list[tuple[dict[tuple[str, str], bool], frozenset[str] | None]] = []
        assignment: dict[tuple[str, str], bool] = {}

        def probe(component: str, task: str) -> bool:
            pair = (component, task)
            if pair in assignment:
                return assignment[pair]
            expr = reduced.get(pair)
            if expr is None:
                # A pair never computed from the MAMA model: the task
                # has no way to learn this component's state.
                return False
            if expr == TRUE:
                return True
            if expr == FALSE:
                return False
            raise _NeedBit(pair)

        def explore() -> None:
            try:
                configuration = problem.graph.evaluate(
                    leaf_state, probe
                ).configuration
            except _NeedBit as need:
                for value in (True, False):
                    assignment[need.pair] = value
                    explore()
                del assignment[need.pair]
                return
            leaves.append((dict(assignment), configuration))

        explore()

        for condition, configuration in leaves:
            node = ONE
            for pair, value in condition.items():
                pair_node = bdd_of(pair)
                if not value:
                    pair_node = manager.negate(pair_node)
                node = manager.apply_and(node, pair_node)
            probability = manager.probability(node, up_probs)
            if probability == 0.0:
                continue
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + p_app * probability
            )
    return accumulator
