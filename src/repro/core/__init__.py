"""The paper's primary contribution: coverage-aware performability.

:class:`PerformabilityAnalyzer` wires everything together:

1. derive the fault propagation graph from the FTLQN model (§3);
2. derive the knowledge propagation graph and ``know`` expressions from
   the MAMA model (§4);
3. scan the space of component up/down states, evaluating
   knowledge-gated reconfiguration (Definition 1) in each, to find the
   distinct operational configurations and their probabilities (§5,
   steps 1–4) — by the paper's literal 2^N enumeration
   (:mod:`repro.core.enumeration`), the factored evaluator
   (:mod:`repro.core.factored`) that realises the §7 conjecture of a
   non-state-space-based computation, the compiled bit-parallel kernel
   (:mod:`repro.core.kernel`), the fully symbolic ROBDD backend
   (:mod:`repro.core.symbolic`) or the bounded most-probable-first
   enumerator (:mod:`repro.core.bounded`);
4. solve one LQN per configuration and attach rewards (§5, step 5);
5. report the expected steady-state reward rate (§5, step 6).
"""

from repro.core.bounded import (
    DEFAULT_EPSILON,
    bounded_configurations,
    nominal_configuration,
)
from repro.core.dependency import CommonCause
from repro.core.enumeration import method_choices, normalize_method
from repro.core.importance import ImportanceRecord, importance_analysis
from repro.core.kernel import (
    CompiledKernel,
    bitset_configurations,
    compile_problem,
)
from repro.core.symbolic import bdd_configurations, build_indicator_bdd
from repro.core.performability import (
    AnalysisStructure,
    BatchSolver,
    LQNCoordinator,
    PerformabilityAnalyzer,
    derive_structure,
)
from repro.core.sweep import (
    SweepEngine,
    SweepPoint,
    SweepPointResult,
    SweepResult,
)
from repro.core.temporal import (
    EffectiveReward,
    ErosionPoint,
    TemporalAnalyzer,
    TemporalPoint,
    TemporalResult,
    architecture_detection_latency,
    notification_hops,
    time_grid,
)
from repro.core.progress import (
    ProgressCallback,
    ProgressEvent,
    ProgressReporter,
    ScanCounters,
    console_progress,
)
from repro.core.results import ConfigurationRecord, PerformabilityResult
from repro.core.rewards import (
    total_reference_throughput,
    weighted_throughput_reward,
)
from repro.core.configuration import configuration_to_lqn, group_support

__all__ = [
    "AnalysisStructure",
    "BatchSolver",
    "CommonCause",
    "LQNCoordinator",
    "CompiledKernel",
    "DEFAULT_EPSILON",
    "ConfigurationRecord",
    "EffectiveReward",
    "ErosionPoint",
    "ImportanceRecord",
    "PerformabilityAnalyzer",
    "PerformabilityResult",
    "ProgressCallback",
    "ProgressEvent",
    "ProgressReporter",
    "ScanCounters",
    "SweepEngine",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "TemporalAnalyzer",
    "TemporalPoint",
    "TemporalResult",
    "architecture_detection_latency",
    "bdd_configurations",
    "bitset_configurations",
    "bounded_configurations",
    "build_indicator_bdd",
    "compile_problem",
    "configuration_to_lqn",
    "console_progress",
    "derive_structure",
    "group_support",
    "importance_analysis",
    "method_choices",
    "nominal_configuration",
    "normalize_method",
    "notification_hops",
    "time_grid",
    "total_reference_throughput",
    "weighted_throughput_reward",
]
