"""Resolve an operational configuration into an ordinary LQN (§5, step 5).

A configuration (Definition 2) is the set of entry and service nodes
that are working and in use.  The resolved LQN contains exactly the
tasks whose entries appear in the configuration; every request through a
service is replaced by a direct call to the target entry that the
service selected (the unique target entry of that service present in
the configuration).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.ftlqn.model import FTLQNModel
from repro.lqn.model import LQNCall, LQNModel


def selected_target_of(
    ftlqn: FTLQNModel, configuration: frozenset[str], service: str
) -> str:
    """The target entry the named service uses in this configuration."""
    candidates = [
        target
        for target in ftlqn.services[service].targets
        if target in configuration
    ]
    if len(candidates) != 1:
        raise ModelError(
            f"configuration does not determine a unique target for service "
            f"{service!r}: candidates {candidates}"
        )
    return candidates[0]


def group_support(
    ftlqn: FTLQNModel, configuration: frozenset[str], group: str
) -> frozenset[str]:
    """Components (tasks and processors) a user group relies on within a
    configuration: the support of the chain from the group's entries
    through the selected service targets.

    Used by the simulators and the detection-delay model to decide
    whether a group still earns reward while the system operates a
    stale configuration.
    """
    support: set[str] = set()
    frontier = [
        entry.name
        for entry in ftlqn.entries_of_task(group)
        if entry.name in configuration
    ]
    seen: set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in ftlqn.entries:
            entry = ftlqn.entries[name]
            task = ftlqn.tasks[entry.task]
            support.add(task.name)
            support.add(task.processor)
            support.update(entry.depends_on)
            for request in entry.requests:
                frontier.append(request.target)
        elif name in ftlqn.services:
            frontier.extend(
                target
                for target in ftlqn.services[name].targets
                if target in configuration
            )
    return frozenset(support)


def configuration_to_lqn(
    ftlqn: FTLQNModel, configuration: frozenset[str], *, name: str | None = None
) -> LQNModel:
    """Build the ordinary LQN for one operational configuration.

    Raises
    ------
    ModelError
        If the configuration is inconsistent with the model (unknown
        node names, or a service without a unique selected target).
    """
    unknown = [
        node
        for node in configuration
        if node not in ftlqn.entries and node not in ftlqn.services
    ]
    if unknown:
        raise ModelError(f"configuration contains unknown nodes: {sorted(unknown)}")

    lqn = LQNModel(name=name or f"{ftlqn.name}-config")
    used_entries = [e for e in ftlqn.entries.values() if e.name in configuration]
    used_tasks = {entry.task for entry in used_entries}
    used_processors = {ftlqn.tasks[t].processor for t in used_tasks}

    for processor_name in ftlqn.processors:
        if processor_name in used_processors:
            processor = ftlqn.processors[processor_name]
            lqn.add_processor(processor.name, multiplicity=processor.multiplicity)
    for task_name, task in ftlqn.tasks.items():
        if task_name in used_tasks:
            lqn.add_task(
                task.name,
                processor=task.processor,
                multiplicity=task.multiplicity,
                is_reference=task.is_reference,
                think_time=task.think_time,
            )
    for entry in used_entries:
        calls = []
        for request in entry.requests:
            if request.target in ftlqn.services:
                if request.target not in configuration:
                    raise ModelError(
                        f"entry {entry.name!r} is in use but its service "
                        f"{request.target!r} is not in the configuration"
                    )
                target = selected_target_of(ftlqn, configuration, request.target)
            else:
                target = request.target
                if target not in configuration:
                    raise ModelError(
                        f"entry {entry.name!r} is in use but its callee "
                        f"{target!r} is not in the configuration"
                    )
            calls.append(LQNCall(target=target, mean_calls=request.mean_calls))
        lqn.add_entry(entry.name, task=entry.task, demand=entry.demand, calls=calls)
    lqn.validate()
    return lqn
