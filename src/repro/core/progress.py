"""Progress and cost instrumentation for the state-space engine.

The evaluators in :mod:`repro.core.enumeration` and
:mod:`repro.core.factored` can scan hundreds of thousands of states;
:class:`PerformabilityAnalyzer.solve` then runs one LQN solve per
distinct configuration.  This module gives both phases a shared,
cheap-to-update instrumentation layer:

* :class:`ScanCounters` — plain additive counters (states visited,
  knowledge-bit cache hits, fault-graph evaluations, per-phase wall
  time).  Workers of the parallel engine fill a private instance and
  the parent merges them exactly with :meth:`ScanCounters.merge`.
* :class:`ProgressEvent` / :data:`ProgressCallback` — the callback
  protocol.  The engine invokes the callback with monotonically
  non-decreasing ``completed`` values per phase; ``total`` is the known
  amount of work in that phase (2^N states for the enumerative scan,
  2^a application states for the factored scan, configuration count
  for the LQN phase).
* :class:`ProgressReporter` — throttles callback invocations to a
  minimum wall-clock interval so per-state instrumentation stays cheap,
  while guaranteeing that the final event of each phase (``completed ==
  total``) is always delivered.
* :func:`console_progress` — a ready-made callback rendering a
  single-line textual progress display, used by the CLI ``--progress``
  flag.

Counters are pure data (no locks, no callbacks) so they pickle cleanly
across :class:`concurrent.futures.ProcessPoolExecutor` boundaries;
callbacks only ever run in the parent process.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, fields


@dataclass
class ScanCounters:
    """Additive cost counters for one analysis run.

    Attributes
    ----------
    states_visited:
        Up/down states covered so far.  The enumerative scan counts
        every one of the 2^N states individually; the factored scan
        adds 2^m per application state (the management states it covers
        symbolically), so both methods end at the same 2^N total.
    app_states_visited:
        Application-side (outer-loop) states processed.
    knowledge_cache_hits:
        Management states whose knowledge-bit pattern was already seen
        in the current application state, so the fault graph was *not*
        re-evaluated.  ``states_visited - knowledge_cache_hits -
        skipped`` upper-bounds the fault-graph work; a high hit rate is
        what keeps the literal scan tolerable.
    fault_graph_evaluations:
        Actual evaluations of the fault propagation graph
        (Definition 1/2 walks).
    decision_leaves:
        Factored method only: leaves of the adaptive knowledge decision
        tree, i.e. distinct (knowledge-literal conjunction →
        configuration) cases weighed on the BDD.
    distinct_configurations:
        Number of distinct operational configurations found.  A *level*
        field: engines assign their snapshot with
        :meth:`record_level` and :meth:`merge` keeps the maximum, so
        repeated scans over one counters object report the size of the
        largest scan rather than a meaningless sum.
    scan_seconds:
        Wall time of the state-space scan phase.
    lqn_seconds:
        Wall time of the per-configuration LQN solve phase.
    lqn_solves:
        LQN models actually solved.
    lqn_cache_hits:
        Configurations whose LQN results were served from the
        analyzer's cache.  With the sweep engine's shared cross-point
        cache, hits span scenario points: a configuration solved for
        one point is a hit for every later point that reaches it.
    lqn_unconverged:
        Configurations whose LQN solve did not meet its convergence
        tolerance (the approximate result is still folded into the
        expected reward, but flagged on its record).
    lqn_batch_max:
        Largest number of configurations solved in one batched LQN
        call (:func:`~repro.lqn.solver.solve_lqn_batch`).  A level
        field (merged by max).
    lqn_warm_starts:
        LQN solves seeded from a previously solved neighbouring
        configuration (the sweep engine's opt-in warm-start index).
    lqn_warm_distance:
        Total Hamming distance (components differing between the
        seeded configuration and its donor) over all warm starts;
        ``lqn_warm_distance / lqn_warm_starts`` is the mean hit
        distance.
    lqn_bounds_skips:
        Optimizer candidates whose full evaluation was skipped because
        a guaranteed throughput upper bound already proved them no
        better than the incumbent.
    sweep_points:
        Scenario points evaluated by a
        :class:`~repro.core.sweep.SweepEngine` run (0 outside sweeps).
    scan_cache_hits:
        Sweep points whose configuration probabilities were served from
        the engine's cross-point scan cache instead of re-scanned.
    kernel_batches:
        Bit-parallel and bounded backends: evaluation batches executed
        by the compiled kernel (each covers up to 2^batch_bits scanned
        states, or up to one heap flush of enumerated states, with one
        pass over the instruction program).
    kernel_instructions:
        Bit-parallel and bounded backends: length of the compiled
        AND/OR/NOT program after common-subexpression elimination.  A
        level field like ``distinct_configurations``: merged by max,
        so a multi-point sweep reports the (shared) program length
        instead of multiplying it by the number of points.
    bdd_nodes:
        Symbolic (``bdd``) backend only: nodes allocated by the shared
        ROBDD manager after compiling every indicator and splitting the
        configuration signatures — the quantity the backend's cost is
        polynomial in (instead of 2^N).
    bdd_cache_hits:
        Symbolic backend only: apply-cache hits of the ROBDD manager
        (how often a Boolean combination was already computed; the
        memoisation that keeps the symbolic build subexponential).
    enumerated_mass:
        Bounded backend only: total probability mass of the states
        actually enumerated.  ``1 - enumerated_mass`` is the rigorous
        leftover bound the reward interval is built from.
    """

    states_visited: int = 0
    app_states_visited: int = 0
    knowledge_cache_hits: int = 0
    fault_graph_evaluations: int = 0
    decision_leaves: int = 0
    distinct_configurations: int = 0
    scan_seconds: float = 0.0
    lqn_seconds: float = 0.0
    lqn_solves: int = 0
    lqn_cache_hits: int = 0
    lqn_unconverged: int = 0
    lqn_batch_max: int = 0
    lqn_warm_starts: int = 0
    lqn_warm_distance: int = 0
    lqn_bounds_skips: int = 0
    sweep_points: int = 0
    scan_cache_hits: int = 0
    kernel_batches: int = 0
    kernel_instructions: int = 0
    bdd_nodes: int = 0
    bdd_cache_hits: int = 0
    enumerated_mass: float = 0.0

    #: Fields that are snapshots of a shared artefact (a compiled
    #: program, a distinct-configuration set, a batch-size watermark)
    #: rather than per-run work.  They merge by max, never by addition.
    _LEVEL_FIELDS = frozenset(
        {"distinct_configurations", "kernel_instructions", "lqn_batch_max"}
    )

    def record_level(self, name: str, value: int) -> None:
        """Raise the level field ``name`` to at least ``value``.

        Backends use this instead of plain assignment so that a shared
        counters object threaded through several scans keeps the
        maximum snapshot instead of whichever scan happened to run
        last."""
        setattr(self, name, max(getattr(self, name), value))

    def merge(self, other: "ScanCounters") -> None:
        """Fold ``other`` into this instance: additive fields are
        summed exactly; level fields (see ``_LEVEL_FIELDS``) keep the
        maximum of the two sides."""
        for f in fields(self):
            if f.name in self._LEVEL_FIELDS:
                setattr(
                    self,
                    f.name,
                    max(getattr(self, f.name), getattr(other, f.name)),
                )
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )

    def as_dict(self) -> dict[str, int | float]:
        """Plain-dict view, e.g. for benchmark JSON ``extra_info``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_dict(self) -> dict[str, int | float]:
        """Canonical JSON form — the schema campaign-store rows,
        sweep exports and benchmark snapshots all share.  Identical to
        :meth:`as_dict`; the ``to_dict``/``from_dict`` pair is the
        round-trippable interface."""
        return self.as_dict()

    @classmethod
    def from_dict(cls, document: Mapping) -> "ScanCounters":
        """Rebuild counters from :meth:`to_dict` output.

        Missing fields default to zero, so rows written before a
        counter existed still load; unknown fields raise ``ValueError``
        (a row from a *newer* schema should be re-keyed, not silently
        truncated).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(
                f"unknown ScanCounters fields {unknown}; known fields: "
                f"{sorted(known)}"
            )
        return cls(**{name: document[name] for name in document})


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification.

    ``phase`` is ``"scan"``, ``"lqn"`` or ``"sweep"`` (scenario points
    of a :class:`~repro.core.sweep.SweepEngine` run);
    ``completed``/``total`` count phase-specific work units (see the
    module docstring).  ``counters`` is the live counter object — read
    it, do not mutate it.
    """

    phase: str
    completed: int
    total: int
    counters: ScanCounters

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


#: The callback protocol: called from the parent process only, never
#: concurrently.  Exceptions propagate to the caller of the engine.
ProgressCallback = Callable[[ProgressEvent], None]


class ProgressReporter:
    """Throttled dispatcher from engine to a :data:`ProgressCallback`.

    A ``None`` callback makes every method a no-op, so engines can
    instrument unconditionally.  Events closer together than
    ``min_interval`` seconds are dropped, except forced ones (phase
    completion), which are always delivered.
    """

    def __init__(
        self,
        callback: ProgressCallback | None = None,
        *,
        min_interval: float = 0.1,
    ):
        self._callback = callback
        self._min_interval = min_interval
        self._last_emit = float("-inf")

    @property
    def active(self) -> bool:
        return self._callback is not None

    def emit(
        self,
        phase: str,
        completed: int,
        total: int,
        counters: ScanCounters,
        *,
        force: bool = False,
    ) -> None:
        if self._callback is None:
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self._min_interval:
            return
        self._last_emit = now
        self._callback(ProgressEvent(phase, completed, total, counters))


def console_progress(stream=None) -> ProgressCallback:
    """A callback rendering ``[phase] completed/total (pp.p%)`` on one
    carriage-returned line of ``stream`` (default: ``sys.stderr``),
    terminating the line when a phase completes."""
    import sys

    out = stream if stream is not None else sys.stderr

    units = {"scan": "states", "lqn": "configurations", "sweep": "points"}

    def callback(event: ProgressEvent) -> None:
        unit = units.get(event.phase, "units")
        out.write(
            f"\r[{event.phase}] {event.completed}/{event.total} {unit} "
            f"({100.0 * event.fraction:5.1f}%)"
        )
        if event.completed >= event.total:
            out.write("\n")
        out.flush()

    return callback
