"""Bounded most-probable-states-first enumeration with rigorous bounds.

The third way between exact scanning (2^N states) and the fully
symbolic ``bdd`` backend: enumerate individual component states **in
decreasing probability order** and stop once the probability mass left
unexplored drops below a target ε.  Because every state's probability
is known exactly, the leftover mass ``1 - Σ enumerated`` is a rigorous
bound, and downstream reward evaluation can report a guaranteed
``[lower, upper]`` interval (see
:meth:`~repro.core.performability.PerformabilityAnalyzer.evaluate_probabilities`)
that tightens monotonically as ε shrinks — at ε = 0 the enumeration is
exhaustive and the interval collapses to the exact value.

Why it works: with independent per-component up probabilities, each
state's probability is a product of factors.  Start from the *base
state* where every variable sits at its likelier value (probability
``Π max(p, 1-p)``, the global maximum).  Flipping variable ``j`` away
from its likely value multiplies the probability by the flip ratio
``r_j = min(p_j, 1-p_j) / max(p_j, 1-p_j) ≤ 1``, so a state's
probability is the base probability times the product of its flips'
ratios.  With ratios sorted descending, the classic append /
replace-last successor scheme enumerates every flip subset exactly
once, each child no more probable than its parent, so a heap pops
states in globally decreasing probability order — the fewest states
per unit of mass retired.  For highly available components (p_fail ≤
1e-3) the mass collapses onto a tiny neighbourhood of the base state:
a 100-component system covers 1 - 1e-4 of its 2^100 ≈ 1.3e30 states
with a few thousand concrete states.  When failure probabilities are
large the mass spreads binomially and no enumeration order helps —
that regime belongs to the exact ``bdd`` backend (see
``docs/algorithms_guide.md`` for the decision table).

Popped states are evaluated in batches through the same
:class:`~repro.core.kernel.CompiledKernel` bitwise program as the
``bits`` backend — 4096 states per pass, one numpy word-op per
instruction — so the per-state cost is a few hundred nanoseconds
instead of a Python-level fault-graph walk.  The evaluation path is
deliberately unrelated to the ROBDD machinery, so the differential
oracle's bdd/bounded cross-check exercises two independent
implementations of the §5 semantics.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Mapping

import numpy as np

from repro.booleans.expr import FALSE, TRUE, And, Expr, Not, Or, Var
from repro.core.enumeration import StateSpaceProblem
from repro.core.kernel import _AND, _OR, CompiledKernel, compile_problem
from repro.core.kernel import derive_indicators
from repro.core.progress import ProgressCallback, ProgressReporter, ScanCounters

#: Default leftover-mass target: stop once the unexplored states hold
#: less than this much probability.
DEFAULT_EPSILON = 1e-9

#: States evaluated per compiled-kernel pass (64 words of 64 states).
_BATCH_STATES = 4096

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_BIT = tuple(np.uint64(1 << b) for b in range(64))


def evaluate_dag(exprs: list[Expr], assignment: Mapping[str, bool]) -> list[bool]:
    """Evaluate several hash-consed expressions under one assignment.

    Unlike :meth:`Expr.evaluate`, which recurses per *path*, this walks
    the shared DAG with a memo, so each distinct subterm is evaluated
    once — essential when the indicator expressions share almost all
    their structure (a service's ``working`` condition is referenced by
    every parent).
    """
    cache: dict[Expr, bool] = {}

    def walk(expr: Expr) -> bool:
        found = cache.get(expr)
        if found is not None:
            return found
        if expr == TRUE:
            value = True
        elif expr == FALSE:
            value = False
        elif isinstance(expr, Var):
            value = bool(assignment[expr.name])
        elif isinstance(expr, Not):
            value = not walk(expr.operand)
        elif isinstance(expr, And):
            value = all(walk(term) for term in expr.terms)
        elif isinstance(expr, Or):
            value = any(walk(term) for term in expr.terms)
        else:
            raise TypeError(f"cannot evaluate {type(expr).__name__}")
        cache[expr] = value
        return value

    return [walk(expr) for expr in exprs]


def nominal_configuration(problem: StateSpaceProblem) -> frozenset[str] | None:
    """The configuration in use when every component is operational.

    This is the natural reward ceiling for well-formed models (repair
    actions reconfigure *around* failures; they do not create capacity
    that the fully-up system lacks), and is what
    ``evaluate_probabilities`` uses to bound the reward of states the
    bounded backend did not enumerate.
    """
    indicators = derive_indicators(problem)
    all_up = {
        name: True
        for name in problem.app_components + problem.mgmt_components
    }
    values = evaluate_dag(
        [indicators.root, *(expr for _, expr in indicators.in_use)], all_up
    )
    if not values[0]:
        return None
    return frozenset(
        name
        for (name, _), in_use in zip(indicators.in_use, values[1:])
        if in_use
    )


class _BatchEvaluator:
    """Evaluate arbitrary sets of states through a compiled kernel.

    The ``bits`` backend's :class:`_KernelRun` walks *consecutive*
    state indices; here the heap hands us an arbitrary set, so each
    batch rebuilds the variable registers from the likely-value base
    pattern and XORs in the flipped bits, then runs the same bitwise
    program and groups states by output signature.
    """

    def __init__(self, kernel: CompiledKernel, likely_up: list[bool]):
        self.kernel = kernel
        self.likely_up = likely_up
        self.words = _BATCH_STATES >> 6
        self.key_columns = (len(kernel.outputs) + 63) // 64
        self._signature_configs: dict[object, frozenset[str] | None] = {}

    def run(
        self, batch: list[tuple[tuple[int, ...], float]],
        flip_register: list[int],
    ) -> dict[frozenset[str] | None, float]:
        """Evaluate ``(flips, mass)`` states; return config → mass."""
        kernel = self.kernel
        count = len(batch)
        registers: list[np.ndarray] = [
            np.full(
                self.words,
                _ALL_ONES if self.likely_up[j] else np.uint64(0),
                dtype=np.uint64,
            )
            for j in range(len(kernel.variables))
        ]
        for index, (flips, _) in enumerate(batch):
            word, bit = index >> 6, _BIT[index & 63]
            for flip in flips:
                registers[flip_register[flip]][word] ^= bit
        registers.append(np.full(self.words, _ALL_ONES, dtype=np.uint64))
        registers.append(np.zeros(self.words, dtype=np.uint64))
        registers.extend(
            np.empty(self.words, dtype=np.uint64)
            for _ in range(kernel.register_count - len(registers))
        )

        bitwise_and, bitwise_or, invert = (
            np.bitwise_and, np.bitwise_or, np.invert
        )
        for op, dst, a, b in kernel.program:
            if op == _AND:
                bitwise_and(registers[a], registers[b], out=registers[dst])
            elif op == _OR:
                bitwise_or(registers[a], registers[b], out=registers[dst])
            else:
                invert(registers[a], out=registers[dst])

        masses = np.array([mass for _, mass in batch], dtype=np.float64)
        if self.key_columns == 1:
            keys = np.zeros(count, dtype=np.uint64)
            for position, register in enumerate(kernel.outputs):
                bits = np.unpackbits(
                    registers[register].view(np.uint8), bitorder="little"
                )[:count]
                keys |= bits.astype(np.uint64) << np.uint64(position)
            signatures, inverse = np.unique(keys, return_inverse=True)
            grouped = np.bincount(
                inverse.ravel(), weights=masses, minlength=len(signatures)
            )
            groups = zip(signatures.tolist(), grouped.tolist())
        else:
            keys = np.zeros((count, self.key_columns), dtype=np.uint64)
            for position, register in enumerate(kernel.outputs):
                bits = np.unpackbits(
                    registers[register].view(np.uint8), bitorder="little"
                )[:count]
                keys[:, position // 64] |= bits.astype(np.uint64) << np.uint64(
                    position % 64
                )
            rows, inverse = np.unique(keys, axis=0, return_inverse=True)
            grouped = np.bincount(
                inverse.ravel(), weights=masses, minlength=len(rows)
            )
            groups = zip((tuple(row) for row in rows.tolist()), grouped.tolist())

        result: dict[frozenset[str] | None, float] = {}
        for signature, mass in groups:
            configuration = self._configuration_of(signature)
            result[configuration] = result.get(configuration, 0.0) + mass
        return result

    def _configuration_of(self, signature) -> frozenset[str] | None:
        found = self._signature_configs.get(signature, _UNSET)
        if found is not _UNSET:
            return found
        words = (signature,) if self.key_columns == 1 else signature
        if not words[0] & 1:  # output 0: root not working
            configuration = None
        else:
            configuration = frozenset(
                name
                for index, name in enumerate(self.kernel.config_nodes)
                if (words[(index + 1) // 64] >> ((index + 1) % 64)) & 1
            )
        self._signature_configs[signature] = configuration
        return configuration


_UNSET = object()


def bounded_configurations(
    problem: StateSpaceProblem,
    *,
    epsilon: float = DEFAULT_EPSILON,
    max_states: int | None = None,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    counters: ScanCounters | None = None,
) -> dict[frozenset[str] | None, float]:
    """Partial configuration probabilities covering mass ≥ 1 - ε.

    Enumerates states in decreasing probability order until the
    leftover mass drops to ``epsilon`` (or ``max_states`` states have
    been visited, if given).  The returned map is exact on every
    enumerated state but *sums to less than one*: the deficit
    ``1 - Σ values`` is precisely the unexplored mass, which
    ``evaluate_probabilities`` turns into a rigorous reward interval.
    With ``epsilon=0.0`` and no ``max_states`` the enumeration is
    exhaustive and the result matches the exact backends.

    ``counters.enumerated_mass`` records the covered mass;
    ``states_visited`` counts only states actually popped (compare with
    the exact backends, which always charge the full 2^N);
    ``kernel_batches``/``kernel_instructions`` count the compiled-
    kernel evaluation passes exactly as for the ``bits`` backend.
    ``jobs`` is accepted for engine-signature compatibility and
    ignored — the heap order is inherently sequential.
    """
    if epsilon < 0.0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if counters is None:
        counters = ScanCounters()
    reporter = ProgressReporter(progress)
    total_states = problem.state_count
    started = time.perf_counter()

    kernel = compile_problem(problem)
    counters.record_level("kernel_instructions", len(kernel.program))

    likely_up: list[bool] = []
    base_probability = 1.0
    ranked: list[tuple[float, int]] = []  # (flip ratio, register index)
    for j, name in enumerate(kernel.variables):
        p = kernel.up_probability[j]
        up_is_likely = p >= 0.5
        likely_up.append(up_is_likely)
        major = p if up_is_likely else 1.0 - p
        base_probability *= major
        ranked.append(((1.0 - major) / major, j))
    ranked.sort(key=lambda pair: (-pair[0], pair[1]))
    ratios = [ratio for ratio, _ in ranked]
    flip_register = [register for _, register in ranked]

    evaluator = _BatchEvaluator(kernel, likely_up)
    accumulator: dict[frozenset[str] | None, float] = {}
    enumerated_mass = 0.0
    popped = 0
    pending: list[tuple[tuple[int, ...], float]] = []
    pending_mass = 0.0

    def flush() -> None:
        nonlocal pending, pending_mass, enumerated_mass, popped
        if not pending:
            return
        for configuration, mass in evaluator.run(pending, flip_register).items():
            accumulator[configuration] = (
                accumulator.get(configuration, 0.0) + mass
            )
        enumerated_mass += pending_mass
        popped += len(pending)
        counters.states_visited += len(pending)
        counters.kernel_batches += 1
        pending = []
        pending_mass = 0.0
        reporter.emit("scan", popped, total_states, counters)

    # Heap of (-probability, flip set) over ranked flip indices; the
    # append / replace-last successor scheme over the descending ratio
    # order generates every flip subset exactly once, children never
    # more probable than their parent.
    heap: list[tuple[float, tuple[int, ...]]] = [(-base_probability, ())]
    while heap:
        if 1.0 - (enumerated_mass + pending_mass) <= epsilon:
            break
        if max_states is not None and popped + len(pending) >= max_states:
            break
        negative, flips = heapq.heappop(heap)
        mass = -negative
        if mass <= 0.0:
            break  # only zero-probability states remain
        pending.append((flips, mass))
        pending_mass += mass
        if len(pending) == _BATCH_STATES:
            flush()
        last = flips[-1] if flips else -1
        succ = last + 1
        if succ < len(ratios) and ratios[succ] > 0.0:
            heapq.heappush(heap, (negative * ratios[succ], flips + (succ,)))
            if flips:
                heapq.heappush(
                    heap,
                    (negative * ratios[succ] / ratios[last], flips[:-1] + (succ,)),
                )
    flush()

    counters.enumerated_mass += enumerated_mass
    counters.record_level("distinct_configurations", len(accumulator))
    counters.scan_seconds += time.perf_counter() - started
    reporter.emit("scan", popped, total_states, counters, force=True)
    return accumulator
