"""Bit-parallel compiled scan kernel: 64+ states per instruction.

The interpreted evaluators walk Python ``Expr`` trees once per state,
so the per-state constant factor — attribute lookups, dict probes,
recursive calls — dominates the 2^N scan long before the state count
does.  This module removes the interpreter from the hot loop entirely:

1. **Symbolic derivation** (:func:`derive_indicators`) re-runs the
   fault-propagation semantics of
   :meth:`repro.ftlqn.fault_graph.FaultPropagationGraph.evaluate`
   *symbolically*, over :class:`~repro.booleans.expr.Expr` values
   instead of booleans.  The result is one boolean indicator expression
   per observable output — "the system is working" plus, for every
   non-leaf fault-graph node, "this node is part of the configuration
   in use" — over the unreliable component variables.  Because the
   expression constructors hash-cons, shared subterms (a service's
   ``working`` condition, a ``know`` minpath) are shared *nodes*, so
   the expression set is a DAG.

2. **Compilation** (:func:`compile_problem`) lowers that DAG into a
   topologically-ordered straight-line program of AND/OR/NOT
   instructions over virtual registers.  Common subexpressions compile
   exactly once (the memo is keyed by hash-consed node), and registers
   are recycled with a last-use free list, so the register file stays
   small enough to live in cache.

3. **Evaluation** (:func:`bitset_configurations`) runs the program over
   bit-packed state vectors: one ``numpy.uint64`` word holds 64
   consecutive states, a batch holds ``2**batch_bits`` of them, and one
   ``numpy`` array op per instruction evaluates the whole batch.  The
   configuration-indicator outputs of each batch are packed into
   per-state signature keys, grouped with ``numpy.unique``, and each
   group's probability mass is accumulated with one vectorized
   ``bincount`` over the per-state weight products.

The result is numerically equal to the interpreted scan (same states,
same per-state probabilities) up to floating-point summation order —
the parity tests assert agreement within 1e-12 on every experiment
suite — while evaluating tens of thousands of states per Python-level
instruction dispatch.

Parallelism composes with the chunked process pool of
:mod:`repro.core.enumeration`: the batch index range is split into
contiguous chunks, each worker compiles the (pickled, structurally
shared) problem once and scans its word range, and the parent merges
partial accumulators in chunk order, exactly like the interpreted
backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.booleans.expr import (
    And,
    Expr,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    _Constant,
    all_of,
    any_of,
)
from repro.core.enumeration import (
    StateSpaceProblem,
    chunk_ranges,
    dispatch_chunks,
    merge_accumulators,
    resolve_jobs,
)
from repro.core.progress import ProgressCallback, ProgressReporter, ScanCounters
from repro.errors import ModelError
from repro.ftlqn.fault_graph import FaultPropagationGraph, NodeKind, ROOT

#: States per evaluation batch is ``2**DEFAULT_BATCH_BITS`` (capped at
#: the model's 2^N): 2^14 states = 256 words = 2 KiB per register, so a
#: few dozen live registers fit comfortably in L1/L2 cache.
DEFAULT_BATCH_BITS = 14

# Instruction opcodes.
_AND, _OR, _NOT = 0, 1, 2

#: ``_LOW_MASKS[j]``: the uint64 whose bit k is set iff state ``k`` of a
#: word has variable ``j`` *up* (a state's variable j is down iff bit j
#: of the state index is set, so "up" selects index bits equal to 0).
_LOW_MASKS = tuple(
    sum(1 << k for k in range(64) if not (k >> j) & 1) for j in range(6)
)


@dataclass(frozen=True)
class SymbolicIndicators:
    """The observable outputs of one scan, as boolean expressions.

    ``root`` is Definition 1 for the whole system ("some reference
    entry works"); ``in_use`` maps every non-leaf fault-graph node to
    Definition 2 membership ("the node is part of the operational
    configuration in use").  All expressions range over the unreliable
    component variables of the :class:`StateSpaceProblem`; fixed
    components are already folded to constants.
    """

    root: Expr
    in_use: tuple[tuple[str, Expr], ...]


def derive_indicators(problem: StateSpaceProblem) -> SymbolicIndicators:
    """Symbolically evaluate the fault graph over expression values.

    This mirrors :meth:`FaultPropagationGraph.evaluate` — Definition 1
    working/selection semantics, ``known_working``/``known_failed``
    knowledge gating, and the Definition 2 configuration extraction —
    but propagates :class:`~repro.booleans.expr.Expr` values instead of
    booleans, with the partially-evaluated ``know`` expressions
    substituted in place of knowledge bits.
    """
    graph: FaultPropagationGraph = problem.graph
    nodes = graph.nodes
    fixed = problem.fixed_assignment()
    app_vars = set(problem.app_components)

    def variable_value(name: str) -> Expr:
        # Mirror of StateSpaceProblem._variable_value: application-side
        # variables stay symbolic, everything else is pinned up unless
        # explicitly fixed down.
        if name in app_vars:
            return Var(name)
        return FALSE if name in problem.fixed_down else TRUE

    def leaf_up(name: str) -> Expr:
        # Mirror of StateSpaceProblem.leaf_state: a leaf is up iff its
        # own variable is up and no covering common-cause event fired.
        terms = [variable_value(name)]
        terms.extend(
            variable_value(event) for event in problem.leaf_causes.get(name, ())
        )
        return all_of(terms)

    if problem.perfect:
        know_of = {}
    else:
        know_of = {
            pair: expr.substitute(fixed)
            for pair, expr in problem.know_exprs.items()
        }

    def know(component: str, task: str) -> Expr:
        if problem.perfect:
            return TRUE
        # A pair never derived from the MAMA model: the task has no way
        # to learn this component's state (same fallback as the
        # factored evaluator's probing know function).
        return know_of.get((component, task), FALSE)

    working: dict[str, Expr] = {}
    selected: dict[tuple[str, int], Expr] = {}
    kw_memo: dict[tuple[str, str], Expr] = {}
    kf_memo: dict[tuple[str, str], Expr] = {}

    def w(name: str) -> Expr:
        value = working.get(name)
        if value is not None:
            return value
        node = nodes[name]
        if node.is_leaf:
            value = leaf_up(name)
        elif node.kind is NodeKind.ENTRY:
            value = all_of(w(child) for child in node.children)
        elif node.kind is NodeKind.ROOT:
            value = any_of(w(child) for child in node.children)
        else:  # SERVICE
            value = any_of(
                sel(name, index) for index in range(len(node.children))
            )
        working[name] = value
        return value

    def sel(service: str, index: int) -> Expr:
        """Definition 1 target selection: target ``index`` is chosen iff
        it is the highest-priority working alternative, the decider
        knows it works, and the decider knows every higher-priority
        alternative failed."""
        value = selected.get((service, index))
        if value is not None:
            return value
        node = nodes[service]
        decider = node.decider
        target = node.children[index]
        terms = [w(target)]
        terms.extend(~w(node.children[j]) for j in range(index))
        terms.append(kw(target, decider))
        terms.extend(kf(node.children[j], decider) for j in range(index))
        value = all_of(terms)
        selected[(service, index)] = value
        return value

    def kw(name: str, task: str) -> Expr:
        """known_working: the node works and ``task`` can tell."""
        value = kw_memo.get((name, task))
        if value is not None:
            return value
        node = nodes[name]
        if node.is_leaf:
            value = leaf_up(name) & know(name, task)
        elif node.kind is NodeKind.ENTRY:
            value = all_of(
                [w(name)] + [kw(child, task) for child in node.children]
            )
        elif node.kind is NodeKind.SERVICE:
            value = any_of(
                sel(name, index) & kw(node.children[index], task)
                for index in range(len(node.children))
            )
        else:
            raise ModelError(
                f"known_working undefined for node kind {node.kind}"
            )
        kw_memo[(name, task)] = value
        return value

    def kf(name: str, task: str) -> Expr:
        """known_failed: the node failed and ``task`` can tell."""
        value = kf_memo.get((name, task))
        if value is not None:
            return value
        node = nodes[name]
        if node.is_leaf:
            value = ~leaf_up(name) & know(name, task)
        elif node.kind is NodeKind.ENTRY:
            # Knowing any one failed contributor suffices for an AND.
            value = ~w(name) & any_of(
                ~w(child) & kf(child, task) for child in node.children
            )
        elif node.kind is NodeKind.SERVICE:
            # To know an OR failed, every alternative must be known
            # failed.
            value = all_of(
                [~w(name)] + [kf(child, task) for child in node.children]
            )
        else:
            raise ModelError(
                f"known_failed undefined for node kind {node.kind}"
            )
        kf_memo[(name, task)] = value
        return value

    # Definition 2, as forward reachability from the root: a non-leaf
    # node is in use iff some in-use parent reaches it — entries reach
    # every non-leaf child, services reach their selected target only.
    root_children = set(graph.root.children)
    parent_edges: dict[str, list[tuple[str, int | None]]] = {}
    for node in nodes.values():
        if node.kind is NodeKind.ENTRY:
            for child in node.children:
                if not nodes[child].is_leaf:
                    parent_edges.setdefault(child, []).append((node.name, None))
        elif node.kind is NodeKind.SERVICE:
            for index, child in enumerate(node.children):
                parent_edges.setdefault(child, []).append((node.name, index))

    in_use_memo: dict[str, Expr] = {}

    def in_use(name: str) -> Expr:
        value = in_use_memo.get(name)
        if value is not None:
            return value
        terms = []
        if name in root_children:
            terms.append(w(name))
        for parent, index in parent_edges.get(name, ()):
            if index is None:
                terms.append(in_use(parent))
            else:
                terms.append(in_use(parent) & sel(parent, index))
        value = any_of(terms)
        in_use_memo[name] = value
        return value

    config_nodes = sorted(
        node.name
        for node in nodes.values()
        if not node.is_leaf and node.name != ROOT
    )
    return SymbolicIndicators(
        root=w(ROOT),
        in_use=tuple((name, in_use(name)) for name in config_nodes),
    )


@dataclass(frozen=True)
class CompiledKernel:
    """A straight-line bitwise program over the problem's variables.

    Registers ``0..len(variables)-1`` hold the variable bit vectors
    (register ``j`` ↔ ``variables[j]`` ↔ bit ``j`` of the state
    index), ``const_true``/``const_false`` hold all-ones/all-zeros, and
    every instruction ``(op, dst, a, b)`` writes a temporary register
    (possibly recycling one whose last use has passed, including an
    operand of the same instruction — the ops are elementwise, so
    in-place evaluation is safe).

    ``outputs[0]`` is the root ("system working") indicator;
    ``outputs[1 + i]`` is the in-use indicator of ``config_nodes[i]``.
    """

    variables: tuple[str, ...]
    up_probability: tuple[float, ...]
    program: tuple[tuple[int, int, int, int], ...]
    register_count: int
    const_true: int
    const_false: int
    outputs: tuple[int, ...]
    config_nodes: tuple[str, ...]

    @property
    def state_count(self) -> int:
        return 1 << len(self.variables)


def compile_indicators(
    indicators: SymbolicIndicators,
    variables: tuple[str, ...],
    up_probability: tuple[float, ...],
) -> CompiledKernel:
    """Lower indicator expressions to a :class:`CompiledKernel`.

    Performs common-subexpression elimination (one instruction per
    distinct, hash-consed DAG node) and register recycling (a node's
    register is freed at its last use and reused for later results).
    """
    output_exprs = [indicators.root] + [expr for _, expr in indicators.in_use]
    var_register = {name: j for j, name in enumerate(variables)}
    const_true = len(variables)
    const_false = const_true + 1

    # Remaining-use counts per DAG node: one per parent reference plus
    # one per output listing (output registers are thus never freed).
    uses: dict[Expr, int] = {}
    stack = list(output_exprs)
    while stack:
        expr = stack.pop()
        seen = expr in uses
        uses[expr] = uses.get(expr, 0) + 1
        if seen:
            continue
        if isinstance(expr, (Var, _Constant)):
            continue
        stack.extend(
            (expr.operand,) if isinstance(expr, Not) else expr.terms
        )

    program: list[tuple[int, int, int, int]] = []
    memo: dict[Expr, int] = {}
    free: list[int] = []
    next_register = const_false + 1

    def allocate() -> int:
        nonlocal next_register
        if free:
            return free.pop()
        register = next_register
        next_register += 1
        return register

    def release(expr: Expr) -> None:
        uses[expr] -= 1
        if uses[expr] == 0:
            register = memo[expr]
            if register > const_false:  # never recycle inputs/constants
                free.append(register)

    def compile_node(expr: Expr) -> int:
        register = memo.get(expr)
        if register is not None:
            return register
        if isinstance(expr, _Constant):
            register = const_true if expr.value else const_false
        elif isinstance(expr, Var):
            register = var_register[expr.name]
        elif isinstance(expr, (And, Or)):
            op = _AND if isinstance(expr, And) else _OR
            terms = expr.terms
            accumulator = compile_node(terms[0])
            accumulator_expr: Expr | None = terms[0]
            for term in terms[1:]:
                operand = compile_node(term)
                # Free both operands before allocating the destination:
                # reusing an operand register in place is safe.
                if accumulator_expr is not None:
                    release(accumulator_expr)
                else:
                    free.append(accumulator)
                release(term)
                register = allocate()
                program.append((op, register, accumulator, operand))
                accumulator = register
                accumulator_expr = None
            register = accumulator
            if accumulator_expr is not None:
                # Single-term And/Or cannot occur (folded at build
                # time), but keep the invariant: the node must own a
                # fresh register so releases stay balanced.
                register = allocate()
                program.append((_OR, register, accumulator, accumulator))
                release(accumulator_expr)
        else:  # Not
            operand = compile_node(expr.operand)
            release(expr.operand)
            register = allocate()
            program.append((_NOT, register, operand, operand))
        memo[expr] = register
        return register

    outputs = tuple(compile_node(expr) for expr in output_exprs)
    return CompiledKernel(
        variables=variables,
        up_probability=up_probability,
        program=tuple(program),
        register_count=next_register,
        const_true=const_true,
        const_false=const_false,
        outputs=outputs,
        config_nodes=tuple(name for name, _ in indicators.in_use),
    )


def compile_problem(problem: StateSpaceProblem) -> CompiledKernel:
    """Derive indicators and compile them for ``problem``.

    Variable bit order is application components first (fastest-varying
    state-index bits), then management components — the probability
    weight table of the evaluator factors over exactly this order.
    """
    variables = problem.app_components + problem.mgmt_components
    up_probability = tuple(
        problem.up_probability[name] for name in variables
    )
    return compile_indicators(
        derive_indicators(problem), variables, up_probability
    )


class _KernelRun:
    """Register file + weight tables for one scan of a compiled kernel.

    A batch covers ``2**L`` consecutive states (``L = min(N,
    batch_bits)``), i.e. ``max(1, 2**(L-6))`` words.  Variable
    registers for bits below ``L`` never change across batches (their
    patterns repeat every batch); bits at or above ``L`` are constant
    within a batch and refilled per batch.  Per-state probabilities
    factor the same way: a precomputed low-bit weight table times a
    scalar high-bit product per batch.
    """

    def __init__(self, kernel: CompiledKernel, batch_bits: int):
        self.kernel = kernel
        count = len(kernel.variables)
        self.L = min(count, max(batch_bits, 6)) if count else 0
        self.batch_states = 1 << self.L
        self.words = max(1, self.batch_states >> 6)
        self.total_batches = 1 << (count - self.L)

        registers: list[np.ndarray | None] = [None] * kernel.register_count
        relative = np.arange(self.words, dtype=np.uint64)
        for j in range(min(self.L, 6)):
            registers[j] = np.full(
                self.words, _LOW_MASKS[j], dtype=np.uint64
            )
        for j in range(6, self.L):
            # Up iff bit (j-6) of the in-batch word index is clear:
            # 0 - 1 wraps to all-ones, 1 - 1 to all-zeros.
            registers[j] = ((relative >> np.uint64(j - 6)) & np.uint64(1)) - np.uint64(1)
        for j in range(self.L, count):
            registers[j] = np.empty(self.words, dtype=np.uint64)
        registers[kernel.const_true] = np.full(
            self.words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
        )
        registers[kernel.const_false] = np.zeros(self.words, dtype=np.uint64)
        for index in range(kernel.const_false + 1, kernel.register_count):
            registers[index] = np.empty(self.words, dtype=np.uint64)
        self.registers: list[np.ndarray] = registers  # type: ignore[assignment]

        state = np.arange(self.batch_states, dtype=np.uint64)
        low_weights = np.ones(self.batch_states, dtype=np.float64)
        for j in range(self.L):
            p_up = kernel.up_probability[j]
            down = ((state >> np.uint64(j)) & np.uint64(1)).astype(bool)
            low_weights *= np.where(down, 1.0 - p_up, p_up)
        self.low_weights = low_weights
        self.key_columns = (len(kernel.outputs) + 63) // 64
        self._signature_configs: dict[object, frozenset[str] | None] = {}

    # ------------------------------------------------------------------

    def _fill_batch(self, batch: int) -> float:
        """Set high-bit variable registers for ``batch``; return the
        high-bit probability factor."""
        kernel = self.kernel
        p_high = 1.0
        for j in range(self.L, len(kernel.variables)):
            down = (batch >> (j - self.L)) & 1
            register = self.registers[j]
            if down:
                register.fill(0)
                p_high *= 1.0 - kernel.up_probability[j]
            else:
                register.fill(0xFFFFFFFFFFFFFFFF)
                p_high *= kernel.up_probability[j]
        return p_high

    def _execute(self) -> None:
        registers = self.registers
        bitwise_and = np.bitwise_and
        bitwise_or = np.bitwise_or
        invert = np.invert
        for op, dst, a, b in self.kernel.program:
            if op == _AND:
                bitwise_and(registers[a], registers[b], out=registers[dst])
            elif op == _OR:
                bitwise_or(registers[a], registers[b], out=registers[dst])
            else:
                invert(registers[a], out=registers[dst])

    def _signature_keys(self) -> np.ndarray:
        """Per-state signature keys, shape (batch_states,) when one
        64-bit column suffices, else (batch_states, columns)."""
        kernel = self.kernel
        n = self.batch_states
        if self.key_columns == 1:
            keys = np.zeros(n, dtype=np.uint64)
            for position, register in enumerate(kernel.outputs):
                bits = np.unpackbits(
                    self.registers[register].view(np.uint8),
                    bitorder="little",
                )[:n]
                keys |= bits.astype(np.uint64) << np.uint64(position)
            return keys
        keys = np.zeros((n, self.key_columns), dtype=np.uint64)
        for position, register in enumerate(kernel.outputs):
            bits = np.unpackbits(
                self.registers[register].view(np.uint8), bitorder="little"
            )[:n]
            keys[:, position // 64] |= bits.astype(np.uint64) << np.uint64(
                position % 64
            )
        return keys

    def _configuration_of(self, signature) -> frozenset[str] | None:
        configuration = self._signature_configs.get(signature, _UNSET)
        if configuration is not _UNSET:
            return configuration
        words = (signature,) if self.key_columns == 1 else signature
        if not words[0] & 1:  # output 0: root not working
            configuration = None
        else:
            configuration = frozenset(
                name
                for index, name in enumerate(self.kernel.config_nodes)
                if (words[(index + 1) // 64] >> ((index + 1) % 64)) & 1
            )
        self._signature_configs[signature] = configuration
        return configuration

    def scan(
        self,
        start: int,
        stop: int,
        accumulator: dict[frozenset[str] | None, float],
        counters: ScanCounters,
        tick=None,
    ) -> None:
        """Scan batches ``[start, stop)`` into ``accumulator``."""
        for batch in range(start, stop):
            p_high = self._fill_batch(batch)
            self._execute()
            keys = self._signature_keys()
            weights = (
                self.low_weights if p_high == 1.0 else p_high * self.low_weights
            )
            if self.key_columns == 1:
                signatures, inverse = np.unique(keys, return_inverse=True)
                masses = np.bincount(
                    inverse, weights=weights, minlength=len(signatures)
                )
                groups = zip(signatures.tolist(), masses.tolist())
            else:
                rows, inverse = np.unique(keys, axis=0, return_inverse=True)
                masses = np.bincount(
                    inverse.ravel(), weights=weights, minlength=len(rows)
                )
                groups = zip(
                    (tuple(row) for row in rows.tolist()), masses.tolist()
                )
            for signature, mass in groups:
                configuration = self._configuration_of(signature)
                accumulator[configuration] = (
                    accumulator.get(configuration, 0.0) + mass
                )
            counters.states_visited += self.batch_states
            counters.kernel_batches += 1
            if tick is not None:
                tick()


_UNSET = object()


def _bits_chunk(
    problem: StateSpaceProblem,
    start: int,
    stop: int,
    batch_bits: int = DEFAULT_BATCH_BITS,
) -> tuple[dict[frozenset[str] | None, float], ScanCounters]:
    """Worker entry point: compile and scan one batch-index chunk."""
    run = _KernelRun(compile_problem(problem), batch_bits)
    accumulator: dict[frozenset[str] | None, float] = {}
    counters = ScanCounters()
    run.scan(start, stop, accumulator, counters)
    return accumulator, counters


def bitset_configurations(
    problem: StateSpaceProblem,
    *,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    counters: ScanCounters | None = None,
    batch_bits: int = DEFAULT_BATCH_BITS,
) -> dict[frozenset[str] | None, float]:
    """Exact configuration probabilities via the compiled bit kernel.

    Drop-in alternative to
    :func:`~repro.core.enumeration.enumerate_configurations` /
    :func:`~repro.core.factored.factored_configurations`: same inputs,
    same configuration→probability map (up to floating-point summation
    order, ≲ 1e-15 relative), same ``jobs``/``progress``/``counters``
    protocol.  ``batch_bits`` sizes the evaluation batch (``2**batch_bits``
    states per array op, clamped to at least one 64-state word); the
    default keeps the register file cache-resident.
    """
    if counters is None:
        counters = ScanCounters()
    jobs = resolve_jobs(jobs)
    reporter = ProgressReporter(progress)
    total_states = problem.state_count
    started = time.perf_counter()

    kernel = compile_problem(problem)
    run = _KernelRun(kernel, batch_bits)
    counters.record_level("kernel_instructions", len(kernel.program))

    if jobs == 1 or run.total_batches < 2:
        accumulator: dict[frozenset[str] | None, float] = {}

        def tick() -> None:
            reporter.emit("scan", counters.states_visited, total_states, counters)

        run.scan(
            0, run.total_batches, accumulator, counters,
            tick=tick if reporter.active else None,
        )
    else:
        ranges = chunk_ranges(run.total_batches, jobs * 4)
        parts = dispatch_chunks(
            partial(_bits_chunk, batch_bits=batch_bits),
            problem, ranges, jobs, counters, reporter, total_states,
        )
        accumulator = merge_accumulators(parts)

    counters.record_level("distinct_configurations", len(accumulator))
    counters.scan_seconds += time.perf_counter() - started
    reporter.emit(
        "scan", counters.states_visited, total_states, counters, force=True
    )
    return accumulator
