"""Entity classes for ordinary Layered Queueing Networks.

An LQN here is the *resolved* form of an FTLQN configuration: services
have been replaced by direct calls to the selected target entries, and
failed tasks have been dropped.  Semantics follow the standard LQN
interpretation [14]:

* tasks are servers with a request queue, ``multiplicity`` parallel
  threads, hosted on a processor;
* an entry, when invoked, executes its host ``demand`` on the processor
  and makes its synchronous ``calls`` (each blocking until the reply);
* *reference* tasks own the customers: each of the ``multiplicity``
  users repeatedly thinks for ``think_time`` then invokes the task's
  entry cycle.

The model is deliberately restricted to synchronous interactions and
acyclic call graphs — exactly the class the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError


@dataclass(frozen=True)
class LQNProcessor:
    """A processor with ``multiplicity`` identical CPUs (FCFS dispatch)."""

    name: str
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ModelError(f"processor {self.name!r}: multiplicity must be >= 1")


@dataclass(frozen=True)
class LQNTask:
    """A task (process) with ``multiplicity`` threads on a processor."""

    name: str
    processor: str
    multiplicity: int = 1
    is_reference: bool = False
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ModelError(f"task {self.name!r}: multiplicity must be >= 1")
        if self.think_time < 0:
            raise ModelError(f"task {self.name!r}: think_time must be >= 0")


@dataclass(frozen=True)
class LQNCall:
    """A synchronous call to ``target`` entry, ``mean_calls`` times per
    invocation of the source entry."""

    target: str
    mean_calls: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_calls <= 0:
            raise ModelError(f"call to {self.target!r}: mean_calls must be positive")


@dataclass(frozen=True)
class LQNEntry:
    """An entry: host demand plus synchronous calls.

    ``phase2_demand`` is the classic LQN second phase: host execution
    performed *after* the reply has been sent.  The caller does not wait
    for it, but it keeps the server thread (and its processor) busy and
    therefore delays subsequent requests.
    """

    name: str
    task: str
    demand: float = 0.0
    calls: tuple[LQNCall, ...] = ()
    phase2_demand: float = 0.0

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ModelError(f"entry {self.name!r}: demand must be >= 0")
        if self.phase2_demand < 0:
            raise ModelError(
                f"entry {self.name!r}: phase2_demand must be >= 0"
            )


@dataclass
class LQNModel:
    """A complete LQN ready for solution.

    Example
    -------
    >>> model = LQNModel(name="tandem")
    >>> _ = model.add_processor("p_client")
    >>> _ = model.add_processor("p_server")
    >>> _ = model.add_task("clients", processor="p_client", multiplicity=5,
    ...                    is_reference=True, think_time=1.0)
    >>> _ = model.add_task("server", processor="p_server")
    >>> _ = model.add_entry("serve", task="server", demand=0.1)
    >>> _ = model.add_entry("cycle", task="clients",
    ...                     calls=[LQNCall("serve")])
    >>> model.validate()
    """

    name: str = "lqn"
    processors: dict[str, LQNProcessor] = field(default_factory=dict)
    tasks: dict[str, LQNTask] = field(default_factory=dict)
    entries: dict[str, LQNEntry] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction

    def add_processor(self, name: str, *, multiplicity: int = 1) -> LQNProcessor:
        """Register a processor and return it."""
        if name in self.processors:
            raise ModelError(f"duplicate processor {name!r}")
        processor = LQNProcessor(name=name, multiplicity=multiplicity)
        self.processors[name] = processor
        return processor

    def add_task(
        self,
        name: str,
        *,
        processor: str,
        multiplicity: int = 1,
        is_reference: bool = False,
        think_time: float = 0.0,
    ) -> LQNTask:
        """Register a task on an existing processor and return it."""
        if name in self.tasks:
            raise ModelError(f"duplicate task {name!r}")
        if processor not in self.processors:
            raise ModelError(f"task {name!r}: unknown processor {processor!r}")
        task = LQNTask(
            name=name,
            processor=processor,
            multiplicity=multiplicity,
            is_reference=is_reference,
            think_time=think_time,
        )
        self.tasks[name] = task
        return task

    def add_entry(
        self,
        name: str,
        *,
        task: str,
        demand: float = 0.0,
        calls: list[LQNCall] | tuple[LQNCall, ...] = (),
        phase2_demand: float = 0.0,
    ) -> LQNEntry:
        """Register an entry on an existing task and return it."""
        if name in self.entries:
            raise ModelError(f"duplicate entry {name!r}")
        if task not in self.tasks:
            raise ModelError(f"entry {name!r}: unknown task {task!r}")
        entry = LQNEntry(
            name=name,
            task=task,
            demand=demand,
            calls=tuple(calls),
            phase2_demand=phase2_demand,
        )
        self.entries[name] = entry
        return entry

    # ------------------------------------------------------------------
    # Queries

    def entries_of_task(self, task: str) -> list[LQNEntry]:
        """Entries owned by the named task, in insertion order."""
        return [entry for entry in self.entries.values() if entry.task == task]

    def reference_tasks(self) -> list[LQNTask]:
        """The customer-owning tasks."""
        return [task for task in self.tasks.values() if task.is_reference]

    def server_tasks(self) -> list[LQNTask]:
        """Tasks that accept requests (non-reference tasks)."""
        return [task for task in self.tasks.values() if not task.is_reference]

    def callers_of_task(self, task: str) -> list[str]:
        """Names of tasks with at least one call into the named task."""
        target_entries = {entry.name for entry in self.entries_of_task(task)}
        callers: list[str] = []
        for entry in self.entries.values():
            if entry.task == task:
                continue
            if any(call.target in target_entries for call in entry.calls):
                if entry.task not in callers:
                    callers.append(entry.task)
        return callers

    # ------------------------------------------------------------------
    # Validation and layering

    def validate(self) -> None:
        """Check referential integrity, acyclicity and customer presence.

        Raises
        ------
        ModelError
            On the first violation found.
        """
        if not self.reference_tasks():
            raise ModelError("LQN has no reference task (no customers)")
        for task in self.reference_tasks():
            if not self.entries_of_task(task.name):
                raise ModelError(f"reference task {task.name!r} has no entries")
        for entry in self.entries.values():
            for call in entry.calls:
                target = self.entries.get(call.target)
                if target is None:
                    raise ModelError(
                        f"entry {entry.name!r}: unknown call target {call.target!r}"
                    )
                if target.task == entry.task:
                    raise ModelError(
                        f"entry {entry.name!r}: synchronous call within task "
                        f"{entry.task!r} would deadlock"
                    )
        self.task_layers()  # raises on call-graph cycles

    def task_layers(self) -> list[list[str]]:
        """Tasks grouped by call depth (layer 0 = reference tasks).

        A task's layer is one more than the deepest of its callers,
        giving the natural top-down ordering used by the layered solver.

        Raises
        ------
        ModelError
            If the task call graph has a cycle.
        """
        depends: dict[str, set[str]] = {name: set() for name in self.tasks}
        for entry in self.entries.values():
            for call in entry.calls:
                target_task = self.entries[call.target].task
                depends[target_task].add(entry.task)

        depth: dict[str, int] = {}
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self.tasks}

        def visit(name: str) -> int:
            if colour[name] == GREY:
                raise ModelError(f"task call graph has a cycle through {name!r}")
            if colour[name] == BLACK:
                return depth[name]
            colour[name] = GREY
            value = 0
            for caller in depends[name]:
                value = max(value, visit(caller) + 1)
            colour[name] = BLACK
            depth[name] = value
            return value

        for name in self.tasks:
            visit(name)
        layer_count = max(depth.values()) + 1 if depth else 0
        layers: list[list[str]] = [[] for _ in range(layer_count)]
        for name, level in depth.items():
            layers[level].append(name)
        return layers
