"""Result container for the layered solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping


@dataclass(frozen=True)
class WarmStart:
    """A seed for the layered solver's waiting-time fixed point.

    ``wait_task`` maps (caller task, server task) pairs to per-visit
    request-queue waiting estimates; ``wait_proc`` maps task names to
    per-invocation processor waiting.  Obtained from a previous solve's
    :attr:`LQNResults.warm_start` and passed to
    :func:`~repro.lqn.solver.solve_lqn` via ``warm_start=``.  Entries
    naming tasks absent from the target model are ignored, so a seed
    from a *similar* configuration (e.g. one component failed) is safe.
    """

    wait_task: Mapping[tuple[str, str], float] = field(default_factory=dict)
    wait_proc: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class LQNResults:
    """Solution of a layered queueing network.

    All rates are per second; all times are seconds.

    Attributes
    ----------
    task_throughputs:
        Invocations per second of each task (for reference tasks:
        completed user cycles per second — the paper's user-group
        throughput f).
    entry_throughputs:
        Invocations per second of each entry.
    entry_service_times:
        Mean time an invocation of the entry occupies its task thread,
        including processor queueing and nested blocking calls.
    entry_waiting_times:
        Mean queueing delay a call to the entry spends waiting for a
        free thread of the entry's task, averaged over calling classes.
    task_utilizations:
        Fraction of time each task's threads are busy or blocked
        (averaged over threads).
    processor_utilizations:
        Fraction of time each processor's CPUs are executing (averaged
        over CPUs).
    iterations:
        Outer fixed-point iterations used by the layered solver.
    converged:
        Whether the outer iteration met its tolerance *and* every inner
        submodel AMVA solve converged.
    warm_start:
        The final waiting-time estimates, reusable as a seed for
        subsequent solves of this or a similar model (``None`` when the
        producer did not record them).
    """

    task_throughputs: Mapping[str, float]
    entry_throughputs: Mapping[str, float]
    entry_service_times: Mapping[str, float]
    entry_waiting_times: Mapping[str, float]
    task_utilizations: Mapping[str, float]
    processor_utilizations: Mapping[str, float]
    iterations: int = 0
    converged: bool = True
    warm_start: WarmStart | None = None

    def throughput_of(self, task: str) -> float:
        """Throughput of a task; raises KeyError for unknown names."""
        return self.task_throughputs[task]

    def reference_throughputs(
        self, reference_names: list[str] | None = None
    ) -> dict[str, float]:
        """Throughputs restricted to the given (reference) task names."""
        if reference_names is None:
            return dict(self.task_throughputs)
        return {name: self.task_throughputs[name] for name in reference_names}
