"""Result container for the layered solver."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping


@dataclass(frozen=True)
class LQNResults:
    """Solution of a layered queueing network.

    All rates are per second; all times are seconds.

    Attributes
    ----------
    task_throughputs:
        Invocations per second of each task (for reference tasks:
        completed user cycles per second — the paper's user-group
        throughput f).
    entry_throughputs:
        Invocations per second of each entry.
    entry_service_times:
        Mean time an invocation of the entry occupies its task thread,
        including processor queueing and nested blocking calls.
    entry_waiting_times:
        Mean queueing delay a call to the entry spends waiting for a
        free thread of the entry's task, averaged over calling classes.
    task_utilizations:
        Fraction of time each task's threads are busy or blocked
        (averaged over threads).
    processor_utilizations:
        Fraction of time each processor's CPUs are executing (averaged
        over CPUs).
    iterations:
        Outer fixed-point iterations used by the layered solver.
    converged:
        Whether the outer iteration met its tolerance.
    """

    task_throughputs: Mapping[str, float]
    entry_throughputs: Mapping[str, float]
    entry_service_times: Mapping[str, float]
    entry_waiting_times: Mapping[str, float]
    task_utilizations: Mapping[str, float]
    processor_utilizations: Mapping[str, float]
    iterations: int = 0
    converged: bool = True

    def throughput_of(self, task: str) -> float:
        """Throughput of a task; raises KeyError for unknown names."""
        return self.task_throughputs[task]

    def reference_throughputs(
        self, reference_names: list[str] | None = None
    ) -> dict[str, float]:
        """Throughputs restricted to the given (reference) task names."""
        if reference_names is None:
            return dict(self.task_throughputs)
        return {name: self.task_throughputs[name] for name in reference_names}
