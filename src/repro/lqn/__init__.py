"""Layered Queueing Network (LQN) modelling and solution.

The paper solves one ordinary LQN per operational configuration with the
LQNS tool [14]; that tool is closed academic software, so this package
implements the substrate from scratch:

* :mod:`repro.lqn.model` — processors, tasks, entries and synchronous
  calls (blocking RPC semantics).
* :mod:`repro.lqn.mva` — exact and approximate (Bard–Schweitzer) Mean
  Value Analysis for closed multi-class queueing networks; the building
  block of the layered solver and independently usable.
* :mod:`repro.lqn.solver` — a Method-of-Layers-style fixed-point solver
  alternating software-contention submodels (one per server task) and
  hardware-contention submodels (one per processor).
* :mod:`repro.lqn.results` — the result container.

The solver is cross-validated against the discrete-event simulator in
:mod:`repro.sim.lqn_sim` (see ``tests/lqn`` and the validation bench).
"""

from repro.lqn.bounds import (
    ClassBounds,
    UtilizationConstraint,
    throughput_bounds,
    utilization_constraints,
)
from repro.lqn.model import LQNCall, LQNEntry, LQNModel, LQNProcessor, LQNTask
from repro.lqn.mva import (
    BatchMVAResult,
    Discipline,
    MVAResult,
    Station,
    StationKind,
    exact_mva,
    schweitzer_mva,
    schweitzer_mva_batch,
)
from repro.lqn.results import LQNResults, WarmStart
from repro.lqn.solver import solve_lqn, solve_lqn_batch

__all__ = [
    "BatchMVAResult",
    "ClassBounds",
    "Discipline",
    "LQNCall",
    "LQNEntry",
    "LQNModel",
    "LQNProcessor",
    "LQNTask",
    "LQNResults",
    "MVAResult",
    "Station",
    "StationKind",
    "UtilizationConstraint",
    "WarmStart",
    "exact_mva",
    "schweitzer_mva",
    "schweitzer_mva_batch",
    "solve_lqn",
    "solve_lqn_batch",
    "throughput_bounds",
    "utilization_constraints",
]
