"""Mean Value Analysis for closed multi-class queueing networks.

Two solvers over the same inputs:

* :func:`exact_mva` — the exact recursion over all population vectors;
  cost grows as ∏(N_c + 1), so it is practical only for small
  populations.  Used as the oracle in tests.
* :func:`schweitzer_mva` — the Bard–Schweitzer approximate MVA
  fixed point; cost independent of population sizes.  Used by the
  layered solver.

Inputs
------
``demands[c][k]`` is the total service demand of class *c* at station
*k* (visit count × per-visit service time).  Stations are *queueing*
(single queue, ``multiplicity`` servers) or *delay* (infinite server).
Class *c* has ``populations[c]`` customers and per-cycle think time
``think_times[c]``.

Multi-server queueing stations use the Seidmann transformation: an
m-server station with demand D behaves approximately like a single
server with demand D/m plus a pure delay of D·(m−1)/m.  This is the
standard approximation in layered queueing solvers.

Queueing stations come in two disciplines:

* ``PS`` (processor sharing / product form): residence
  R_c = D_c · (1 + Q̂), the exact BCMP form — also what
  :func:`exact_mva` computes;
* ``FCFS`` with class-dependent service times: the standard
  non-product-form heuristic R_c = v_c · (s_c + Σ_j s_j · Q̂_j), where an
  arriving customer waits for the *actual* work in queue rather than a
  multiple of its own service time.  This matters when a fast class and
  a slow class share one server (the paper's Server1 serves 1 s requests
  from AppA and 0.5 s requests from AppB); PS-style MVA systematically
  overstates the fast class's waiting there.

For FCFS stations pass ``visits`` so per-visit service times can be
recovered from the total demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ConvergenceError, SolverError


class StationKind(Enum):
    """Structural kind of a station."""

    QUEUE = "queue"
    DELAY = "delay"


class Discipline(Enum):
    """Queueing discipline of a QUEUE station."""

    PS = "ps"
    FCFS = "fcfs"


@dataclass(frozen=True)
class Station:
    """A service station.

    ``multiplicity`` is the number of identical servers for QUEUE
    stations and ignored for DELAY stations; ``discipline`` selects the
    residence-time formula for QUEUE stations.
    """

    name: str
    kind: StationKind = StationKind.QUEUE
    multiplicity: int = 1
    discipline: Discipline = Discipline.PS

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise SolverError(f"station {self.name!r}: multiplicity must be >= 1")


@dataclass(frozen=True)
class MVAResult:
    """Solution of a closed multi-class network.

    Attributes
    ----------
    throughputs:
        Per-class cycle throughput X_c (cycles/second).
    residence_times:
        R[c][k] — total residence (waiting + service, all visits) of
        class c at station k per cycle.
    queue_lengths:
        Q[c][k] — mean number of class-c customers at station k.
    utilizations:
        U[k] — total utilisation of station k (per server).
    cycle_times:
        Per-class mean cycle time including think time.
    """

    throughputs: np.ndarray
    residence_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_times: np.ndarray


def _validate_inputs(
    stations: list[Station],
    demands: np.ndarray,
    populations: list[int] | list[float],
    think_times: list[float],
) -> None:
    classes = len(populations)
    if demands.shape != (classes, len(stations)):
        raise SolverError(
            f"demands shape {demands.shape} does not match "
            f"{classes} classes x {len(stations)} stations"
        )
    if len(think_times) != classes:
        raise SolverError("think_times length must equal the number of classes")
    if np.any(demands < 0):
        raise SolverError("demands must be non-negative")
    if any(n < 0 for n in populations):
        raise SolverError("populations must be non-negative")
    if any(z < 0 for z in think_times):
        raise SolverError("think times must be non-negative")


def _seidmann(stations: list[Station], demands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split demands into a queueing part and an additive delay part."""
    queue_demand = demands.astype(float).copy()
    extra_delay = np.zeros_like(queue_demand)
    for k, station in enumerate(stations):
        if station.kind is StationKind.QUEUE and station.multiplicity > 1:
            m = station.multiplicity
            extra_delay[:, k] = queue_demand[:, k] * (m - 1) / m
            queue_demand[:, k] = queue_demand[:, k] / m
    return queue_demand, extra_delay


def exact_mva(
    stations: list[Station],
    demands: np.ndarray,
    populations: list[int],
    think_times: list[float] | None = None,
) -> MVAResult:
    """Exact MVA over all population vectors (small populations only).

    Raises
    ------
    SolverError
        On inconsistent inputs or populations too large to enumerate
        (product of (N_c + 1) above 2_000_000).
    """
    demands = np.asarray(demands, dtype=float)
    classes = len(populations)
    think = list(think_times) if think_times is not None else [0.0] * classes
    _validate_inputs(stations, demands, populations, think)
    if any(int(n) != n for n in populations):
        raise SolverError("exact MVA requires integer populations")
    if any(
        s.kind is StationKind.QUEUE and s.discipline is Discipline.FCFS
        for s in stations
    ):
        raise SolverError(
            "exact MVA supports only PS queueing stations (product form); "
            "use schweitzer_mva for the FCFS heuristic"
        )

    space = 1
    for n in populations:
        space *= n + 1
    if space > 2_000_000:
        raise SolverError(
            f"exact MVA state space {space} too large; use schweitzer_mva"
        )

    queue_demand, extra_delay = _seidmann(stations, demands)
    station_count = len(stations)
    is_queue = np.array([s.kind is StationKind.QUEUE for s in stations])

    # Q[population vector][k] — total queue length at station k.
    queues: dict[tuple[int, ...], np.ndarray] = {
        tuple([0] * classes): np.zeros(station_count)
    }

    def vectors(limits: list[int]):
        if not limits:
            yield ()
            return
        for head in range(limits[0] + 1):
            for tail in vectors(limits[1:]):
                yield (head, *tail)

    throughput = np.zeros(classes)
    residence = np.zeros((classes, station_count))
    per_class_queue = np.zeros((classes, station_count))

    ordered = sorted(vectors(list(populations)), key=sum)
    for vector in ordered:
        if sum(vector) == 0:
            continue
        residence_here = np.zeros((classes, station_count))
        x_here = np.zeros(classes)
        for c in range(classes):
            if vector[c] == 0:
                continue
            lower = list(vector)
            lower[c] -= 1
            q_lower = queues[tuple(lower)]
            for k in range(station_count):
                if is_queue[k]:
                    residence_here[c, k] = (
                        queue_demand[c, k] * (1.0 + q_lower[k]) + extra_delay[c, k]
                    )
                else:
                    residence_here[c, k] = demands[c, k]
            denom = think[c] + residence_here[c].sum()
            if denom <= 0:
                raise SolverError(
                    f"class {c} has zero demand and zero think time"
                )
            x_here[c] = vector[c] / denom
        q_here = np.zeros(station_count)
        for k in range(station_count):
            q_here[k] = float(np.dot(x_here, residence_here[:, k]))
        queues[vector] = q_here
        if vector == tuple(populations):
            throughput = x_here
            residence = residence_here
            for k in range(station_count):
                per_class_queue[:, k] = x_here * residence_here[:, k]

    utilization = np.zeros(station_count)
    for k, station in enumerate(stations):
        if station.kind is StationKind.QUEUE:
            utilization[k] = float(
                np.dot(throughput, demands[:, k]) / station.multiplicity
            )
        else:
            utilization[k] = float(np.dot(throughput, demands[:, k]))
    cycle = np.array(
        [
            think[c] + residence[c].sum() if populations[c] > 0 else 0.0
            for c in range(classes)
        ]
    )
    return MVAResult(
        throughputs=throughput,
        residence_times=residence,
        queue_lengths=per_class_queue,
        utilizations=utilization,
        cycle_times=cycle,
    )


def schweitzer_mva(
    stations: list[Station],
    demands: np.ndarray,
    populations: list[float],
    think_times: list[float] | None = None,
    *,
    visits: np.ndarray | None = None,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
) -> MVAResult:
    """Bard–Schweitzer approximate MVA.

    Accepts non-integer populations (useful when a caller class is a
    fractional share of a multi-entry task).  Classes with zero
    population are carried through with zero throughput.

    Parameters
    ----------
    visits:
        Per-class visit counts, same shape as ``demands``; required when
        any station uses the FCFS discipline, so per-visit service times
        ``demands / visits`` can be formed.  Defaults to one visit
        wherever demand is positive.

    Raises
    ------
    ConvergenceError
        If the fixed point is not reached within ``max_iterations``.
    """
    demands = np.asarray(demands, dtype=float)
    classes = len(populations)
    think = list(think_times) if think_times is not None else [0.0] * classes
    _validate_inputs(stations, demands, populations, think)
    if visits is None:
        visits = (demands > 0).astype(float)
    else:
        visits = np.asarray(visits, dtype=float)
        if visits.shape != demands.shape:
            raise SolverError("visits shape must match demands shape")
        if np.any((demands > 0) & (visits <= 0)):
            raise SolverError("positive demand requires positive visits")

    # Per-visit service time; zero where a class never visits.
    service = np.divide(
        demands, visits, out=np.zeros_like(demands), where=visits > 0
    )
    queue_demand, extra_delay = _seidmann(stations, demands)
    # Per-visit queueing service after the Seidmann split.
    queue_service = np.divide(
        queue_demand, visits, out=np.zeros_like(queue_demand), where=visits > 0
    )

    station_count = len(stations)
    is_queue = np.array([s.kind is StationKind.QUEUE for s in stations])
    is_fcfs = np.array(
        [
            s.kind is StationKind.QUEUE and s.discipline is Discipline.FCFS
            for s in stations
        ]
    )
    pops = np.asarray(populations, dtype=float)
    active = pops > 0

    # Initial guess: customers evenly spread over stations with demand.
    queue = np.zeros((classes, station_count))
    for c in range(classes):
        positive = demands[c] > 0
        if active[c] and positive.any():
            queue[c, positive] = pops[c] / positive.sum()

    residence = np.zeros((classes, station_count))
    throughput = np.zeros(classes)
    delta = 0.0
    for iteration in range(max_iterations):
        total_queue = queue.sum(axis=0)
        for c in range(classes):
            if not active[c]:
                residence[c] = 0.0
                continue
            # Arrival theorem with the Schweitzer estimate: an arriving
            # class-c customer sees the others plus a (N_c - 1)/N_c
            # share of its own class's queue.
            seen_per_class = queue.copy()
            seen_per_class[c] *= max(0.0, (pops[c] - 1.0) / pops[c])
            seen_total = seen_per_class.sum(axis=0)
            # FCFS: wait for the actual backlogged work of each class.
            backlog = np.einsum("jk,jk->k", queue_service, seen_per_class)
            fcfs_residence = (
                visits[c] * (queue_service[c] + backlog) + extra_delay[c]
            )
            ps_residence = queue_demand[c] * (1.0 + seen_total) + extra_delay[c]
            residence[c] = np.where(
                is_queue,
                np.where(is_fcfs, fcfs_residence, ps_residence),
                demands[c],
            )
        new_throughput = np.zeros(classes)
        for c in range(classes):
            if not active[c]:
                continue
            denom = think[c] + residence[c].sum()
            if denom <= 0:
                raise SolverError(f"class {c} has zero demand and zero think time")
            new_throughput[c] = pops[c] / denom
        new_queue = new_throughput[:, None] * residence
        delta = float(np.max(np.abs(new_queue - queue))) if queue.size else 0.0
        queue = new_queue
        throughput = new_throughput
        if delta < tolerance:
            break
    else:
        raise ConvergenceError(
            "Bard-Schweitzer MVA did not converge",
            iterations=max_iterations,
            residual=delta,
        )

    utilization = np.zeros(station_count)
    for k, station in enumerate(stations):
        if station.kind is StationKind.QUEUE:
            utilization[k] = float(
                np.dot(throughput, demands[:, k]) / station.multiplicity
            )
        else:
            utilization[k] = float(np.dot(throughput, demands[:, k]))
    cycle = np.array(
        [
            think[c] + residence[c].sum() if active[c] else 0.0
            for c in range(classes)
        ]
    )
    return MVAResult(
        throughputs=throughput,
        residence_times=residence,
        queue_lengths=queue,
        utilizations=utilization,
        cycle_times=cycle,
    )
