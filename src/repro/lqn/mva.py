"""Mean Value Analysis for closed multi-class queueing networks.

Two solvers over the same inputs:

* :func:`exact_mva` — the exact recursion over all population vectors;
  cost grows as ∏(N_c + 1), so it is practical only for small
  populations.  Used as the oracle in tests.
* :func:`schweitzer_mva` — the Bard–Schweitzer approximate MVA
  fixed point; cost independent of population sizes.  Used by the
  layered solver.

Inputs
------
``demands[c][k]`` is the total service demand of class *c* at station
*k* (visit count × per-visit service time).  Stations are *queueing*
(single queue, ``multiplicity`` servers) or *delay* (infinite server).
Class *c* has ``populations[c]`` customers and per-cycle think time
``think_times[c]``.

Multi-server queueing stations use the Seidmann transformation: an
m-server station with demand D behaves approximately like a single
server with demand D/m plus a pure delay of D·(m−1)/m.  This is the
standard approximation in layered queueing solvers.

Queueing stations come in two disciplines:

* ``PS`` (processor sharing / product form): residence
  R_c = D_c · (1 + Q̂), the exact BCMP form — also what
  :func:`exact_mva` computes;
* ``FCFS`` with class-dependent service times: the standard
  non-product-form heuristic R_c = v_c · (s_c + Σ_j s_j · Q̂_j), where an
  arriving customer waits for the *actual* work in queue rather than a
  multiple of its own service time.  This matters when a fast class and
  a slow class share one server (the paper's Server1 serves 1 s requests
  from AppA and 0.5 s requests from AppB); PS-style MVA systematically
  overstates the fast class's waiting there.

For FCFS stations pass ``visits`` so per-visit service times can be
recovered from the total demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ConvergenceError, SolverError


class StationKind(Enum):
    """Structural kind of a station."""

    QUEUE = "queue"
    DELAY = "delay"


class Discipline(Enum):
    """Queueing discipline of a QUEUE station."""

    PS = "ps"
    FCFS = "fcfs"


@dataclass(frozen=True)
class Station:
    """A service station.

    ``multiplicity`` is the number of identical servers for QUEUE
    stations and ignored for DELAY stations; ``discipline`` selects the
    residence-time formula for QUEUE stations.
    """

    name: str
    kind: StationKind = StationKind.QUEUE
    multiplicity: int = 1
    discipline: Discipline = Discipline.PS

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise SolverError(f"station {self.name!r}: multiplicity must be >= 1")


@dataclass(frozen=True)
class MVAResult:
    """Solution of a closed multi-class network.

    Attributes
    ----------
    throughputs:
        Per-class cycle throughput X_c (cycles/second).
    residence_times:
        R[c][k] — total residence (waiting + service, all visits) of
        class c at station k per cycle.
    queue_lengths:
        Q[c][k] — mean number of class-c customers at station k.
    utilizations:
        U[k] — total utilisation of station k (per server).
    cycle_times:
        Per-class mean cycle time including think time.
    """

    throughputs: np.ndarray
    residence_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_times: np.ndarray


def _validate_inputs(
    stations: list[Station],
    demands: np.ndarray,
    populations: list[int] | list[float],
    think_times: list[float],
) -> None:
    classes = len(populations)
    if demands.shape != (classes, len(stations)):
        raise SolverError(
            f"demands shape {demands.shape} does not match "
            f"{classes} classes x {len(stations)} stations"
        )
    if len(think_times) != classes:
        raise SolverError("think_times length must equal the number of classes")
    if not np.all(np.isfinite(demands)):
        raise SolverError("demands must be finite")
    if not np.all(np.isfinite(np.asarray(populations, dtype=float))):
        raise SolverError("populations must be finite")
    if not np.all(np.isfinite(np.asarray(think_times, dtype=float))):
        raise SolverError("think times must be finite")
    if np.any(demands < 0):
        raise SolverError("demands must be non-negative")
    if any(n < 0 for n in populations):
        raise SolverError("populations must be non-negative")
    if any(z < 0 for z in think_times):
        raise SolverError("think times must be non-negative")


def _seidmann(stations: list[Station], demands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split demands into a queueing part and an additive delay part."""
    queue_demand = demands.astype(float).copy()
    extra_delay = np.zeros_like(queue_demand)
    for k, station in enumerate(stations):
        if station.kind is StationKind.QUEUE and station.multiplicity > 1:
            m = station.multiplicity
            extra_delay[:, k] = queue_demand[:, k] * (m - 1) / m
            queue_demand[:, k] = queue_demand[:, k] / m
    return queue_demand, extra_delay


def exact_mva(
    stations: list[Station],
    demands: np.ndarray,
    populations: list[int],
    think_times: list[float] | None = None,
) -> MVAResult:
    """Exact MVA over all population vectors (small populations only).

    Raises
    ------
    SolverError
        On inconsistent inputs or populations too large to enumerate
        (product of (N_c + 1) above 2_000_000).
    """
    demands = np.asarray(demands, dtype=float)
    classes = len(populations)
    think = list(think_times) if think_times is not None else [0.0] * classes
    _validate_inputs(stations, demands, populations, think)
    if any(int(n) != n for n in populations):
        raise SolverError("exact MVA requires integer populations")
    if any(
        s.kind is StationKind.QUEUE and s.discipline is Discipline.FCFS
        for s in stations
    ):
        raise SolverError(
            "exact MVA supports only PS queueing stations (product form); "
            "use schweitzer_mva for the FCFS heuristic"
        )

    space = 1
    for n in populations:
        space *= n + 1
    if space > 2_000_000:
        raise SolverError(
            f"exact MVA state space {space} too large; use schweitzer_mva"
        )

    queue_demand, extra_delay = _seidmann(stations, demands)
    station_count = len(stations)
    is_queue = np.array([s.kind is StationKind.QUEUE for s in stations])

    # Q[population vector][k] — total queue length at station k.
    queues: dict[tuple[int, ...], np.ndarray] = {
        tuple([0] * classes): np.zeros(station_count)
    }

    def vectors(limits: list[int]):
        if not limits:
            yield ()
            return
        for head in range(limits[0] + 1):
            for tail in vectors(limits[1:]):
                yield (head, *tail)

    throughput = np.zeros(classes)
    residence = np.zeros((classes, station_count))
    per_class_queue = np.zeros((classes, station_count))

    ordered = sorted(vectors(list(populations)), key=sum)
    for vector in ordered:
        if sum(vector) == 0:
            continue
        residence_here = np.zeros((classes, station_count))
        x_here = np.zeros(classes)
        for c in range(classes):
            if vector[c] == 0:
                continue
            lower = list(vector)
            lower[c] -= 1
            q_lower = queues[tuple(lower)]
            for k in range(station_count):
                if is_queue[k]:
                    residence_here[c, k] = (
                        queue_demand[c, k] * (1.0 + q_lower[k]) + extra_delay[c, k]
                    )
                else:
                    residence_here[c, k] = demands[c, k]
            denom = think[c] + residence_here[c].sum()
            if denom <= 0:
                raise SolverError(
                    f"class {c} has zero demand and zero think time"
                )
            x_here[c] = vector[c] / denom
        q_here = np.zeros(station_count)
        for k in range(station_count):
            q_here[k] = float(np.dot(x_here, residence_here[:, k]))
        queues[vector] = q_here
        if vector == tuple(populations):
            throughput = x_here
            residence = residence_here
            for k in range(station_count):
                per_class_queue[:, k] = x_here * residence_here[:, k]

    utilization = np.zeros(station_count)
    for k, station in enumerate(stations):
        if station.kind is StationKind.QUEUE:
            utilization[k] = float(
                np.dot(throughput, demands[:, k]) / station.multiplicity
            )
        else:
            utilization[k] = float(np.dot(throughput, demands[:, k]))
    cycle = np.array(
        [
            think[c] + residence[c].sum() if populations[c] > 0 else 0.0
            for c in range(classes)
        ]
    )
    return MVAResult(
        throughputs=throughput,
        residence_times=residence,
        queue_lengths=per_class_queue,
        utilizations=utilization,
        cycle_times=cycle,
    )


@dataclass(frozen=True)
class BatchMVAResult:
    """Solutions of a batch of closed networks sharing one topology.

    Every per-network array gains a leading batch axis relative to
    :class:`MVAResult`; ``iterations`` counts fixed-point updates per
    element and ``converged`` flags which elements met the tolerance.
    Each element is bit-identical to an independent
    :func:`schweitzer_mva` solve of the same inputs.
    """

    throughputs: np.ndarray
    residence_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_times: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    def element(self, index: int) -> MVAResult:
        """The ``index``-th element as a plain :class:`MVAResult`."""
        return MVAResult(
            throughputs=self.throughputs[index],
            residence_times=self.residence_times[index],
            queue_lengths=self.queue_lengths[index],
            utilizations=self.utilizations[index],
            cycle_times=self.cycle_times[index],
        )


def default_initial_queue(
    demands: np.ndarray, populations: np.ndarray
) -> np.ndarray:
    """The cold-start queue guess: customers spread over demanded stations.

    ``demands`` is ``(batch, classes, stations)``, ``populations``
    ``(batch, classes)``; the result matches ``demands`` in shape.
    """
    positive = demands > 0
    count = positive.sum(axis=2)
    active = (populations > 0) & (count > 0)
    share = np.divide(
        populations, count, out=np.zeros_like(populations, dtype=float),
        where=active,
    )
    return positive * share[:, :, None]


def _validate_batch(
    stations: list[Station],
    demands: np.ndarray,
    populations: np.ndarray,
    think_times: np.ndarray,
) -> None:
    if demands.ndim != 3 or demands.shape[2] != len(stations):
        raise SolverError(
            f"batch demands shape {demands.shape} does not match "
            f"(batch, classes, {len(stations)} stations)"
        )
    if populations.shape != demands.shape[:2]:
        raise SolverError(
            f"populations shape {populations.shape} does not match "
            f"demands shape {demands.shape}"
        )
    if think_times.shape != demands.shape[:2]:
        raise SolverError(
            f"think_times shape {think_times.shape} does not match "
            f"demands shape {demands.shape}"
        )
    if not np.all(np.isfinite(demands)):
        raise SolverError("demands must be finite")
    if not np.all(np.isfinite(populations)):
        raise SolverError("populations must be finite")
    if not np.all(np.isfinite(think_times)):
        raise SolverError("think times must be finite")
    if np.any(demands < 0):
        raise SolverError("demands must be non-negative")
    if np.any(populations < 0):
        raise SolverError("populations must be non-negative")
    if np.any(think_times < 0):
        raise SolverError("think times must be non-negative")


def schweitzer_mva_batch(
    stations: list[Station],
    demands: np.ndarray,
    populations: np.ndarray,
    think_times: np.ndarray,
    *,
    visits: np.ndarray | None = None,
    multiplicities: np.ndarray | None = None,
    initial_queues: np.ndarray | None = None,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
    raise_on_failure: bool = True,
) -> BatchMVAResult:
    """Bard–Schweitzer AMVA over a batch of networks at once.

    All elements share the station topology (kinds and disciplines of
    ``stations``) but carry their own demands, populations, think times
    and (optionally) per-station multiplicities.  The fixed point
    iterates every element simultaneously with per-element convergence
    masking: an element that meets ``tolerance`` is frozen while the
    rest keep iterating, so each element's solution is exactly what an
    independent :func:`schweitzer_mva` call would produce — batching is
    a pure wall-time optimisation.

    Parameters
    ----------
    demands:
        ``(batch, classes, stations)`` service demands.
    populations, think_times:
        ``(batch, classes)`` customer counts and per-cycle think times.
    visits:
        Optional ``(batch, classes, stations)`` visit counts (see
        :func:`schweitzer_mva`); defaults to one visit wherever demand
        is positive.
    multiplicities:
        Optional ``(batch, stations)`` per-element server counts for
        QUEUE stations, overriding ``Station.multiplicity``.
    initial_queues:
        Optional ``(batch, classes, stations)`` starting queue lengths
        (warm start).  Defaults to :func:`default_initial_queue`.
    raise_on_failure:
        When true (the sequential contract), raise
        :class:`~repro.errors.ConvergenceError` if any element fails to
        converge; when false, report failures via ``converged``.

    Raises
    ------
    SolverError
        On inconsistent or non-finite inputs, or when a class has zero
        demand and zero think time.
    ConvergenceError
        See ``raise_on_failure``.
    """
    demands = np.asarray(demands, dtype=float)
    populations = np.asarray(populations, dtype=float)
    think_times = np.asarray(think_times, dtype=float)
    _validate_batch(stations, demands, populations, think_times)
    batch, classes, station_count = demands.shape

    if visits is None:
        visits = (demands > 0).astype(float)
    else:
        visits = np.asarray(visits, dtype=float)
        if visits.shape != demands.shape:
            raise SolverError("visits shape must match demands shape")
        if np.any((demands > 0) & (visits <= 0)):
            raise SolverError("positive demand requires positive visits")

    is_queue = np.array([s.kind is StationKind.QUEUE for s in stations])
    is_fcfs = np.array(
        [
            s.kind is StationKind.QUEUE and s.discipline is Discipline.FCFS
            for s in stations
        ]
    )
    if multiplicities is None:
        multiplicities = np.broadcast_to(
            np.array([s.multiplicity for s in stations], dtype=np.int64),
            (batch, station_count),
        )
    else:
        multiplicities = np.asarray(multiplicities, dtype=np.int64)
        if multiplicities.shape != (batch, station_count):
            raise SolverError(
                f"multiplicities shape {multiplicities.shape} does not "
                f"match (batch, stations) = {(batch, station_count)}"
            )
        if np.any(multiplicities < 1):
            raise SolverError("multiplicities must be >= 1")

    # Seidmann split, per element: an m-server queue behaves like a
    # single server with demand D/m plus a pure delay of D(m-1)/m.
    multi = is_queue & (multiplicities > 1)
    m = multiplicities[:, None, :]
    split = multi[:, None, :]
    extra_delay = np.where(split, demands * (m - 1) / m, 0.0)
    queue_demand = np.where(split, demands / m, demands)
    # Per-visit (queueing) service times; zero where a class never visits.
    queue_service = np.divide(
        queue_demand, visits, out=np.zeros_like(queue_demand),
        where=visits > 0,
    )

    pops = populations
    active = pops > 0
    # Schweitzer self-term ratio (N_c - 1)/N_c, clamped at zero.
    ratio = np.maximum(
        0.0,
        np.divide(pops - 1.0, pops, out=np.zeros_like(pops), where=active),
    )

    if initial_queues is None:
        queue = default_initial_queue(demands, pops)
    else:
        initial_queues = np.asarray(initial_queues, dtype=float)
        if initial_queues.shape != demands.shape:
            raise SolverError(
                f"initial_queues shape {initial_queues.shape} does not "
                f"match demands shape {demands.shape}"
            )
        if not np.all(np.isfinite(initial_queues)):
            raise SolverError("initial_queues must be finite")
        if np.any(initial_queues < 0):
            raise SolverError("initial_queues must be non-negative")
        queue = initial_queues.copy()

    residence = np.zeros_like(demands)
    throughput = np.zeros_like(pops)
    iterations = np.zeros(batch, dtype=np.int64)
    converged = np.zeros(batch, dtype=bool)
    if classes == 0 or station_count == 0 or batch == 0:
        # Degenerate: the sequential loop performs one vacuous update
        # (delta == 0) and stops.
        iterations += 1 if batch else 0
        converged |= True
        return BatchMVAResult(
            throughputs=throughput,
            residence_times=residence,
            queue_lengths=queue,
            utilizations=np.zeros((batch, station_count)),
            cycle_times=np.zeros((batch, classes)),
            iterations=iterations,
            converged=converged,
        )

    last_residual = np.zeros(batch)
    # Live-subset state: elements are compacted out once they converge.
    # All per-iteration operations are elementwise over the batch axis
    # (class/station reductions are per element), so compaction cannot
    # change any element's trajectory.
    live = np.arange(batch)

    def sliced(index):
        return (
            queue[index], demands[index], visits[index],
            queue_demand[index], queue_service[index], extra_delay[index],
            pops[index], think_times[index], ratio[index], active[index],
        )

    (q, dem, vis, q_dem, q_srv, x_delay, pop, think, rat, act) = sliced(live)
    for _ in range(max_iterations):
        residence_live = np.empty_like(dem)
        for c in range(classes):
            # Arrival theorem with the Schweitzer estimate: class c sees
            # every other class's queue plus (N_c-1)/N_c of its own.
            # Explicit class-ordered accumulation keeps each element's
            # arithmetic identical to the sequential solver's.
            seen_total = np.zeros_like(dem[:, 0, :])
            backlog = np.zeros_like(seen_total)
            for j in range(classes):
                if j == c:
                    seen_j = q[:, j, :] * rat[:, c, None]
                else:
                    seen_j = q[:, j, :]
                seen_total = seen_total + seen_j
                backlog = backlog + q_srv[:, j, :] * seen_j
            fcfs_residence = (
                vis[:, c, :] * (q_srv[:, c, :] + backlog) + x_delay[:, c, :]
            )
            ps_residence = (
                q_dem[:, c, :] * (1.0 + seen_total) + x_delay[:, c, :]
            )
            residence_live[:, c, :] = np.where(
                is_queue,
                np.where(is_fcfs, fcfs_residence, ps_residence),
                dem[:, c, :],
            )
        residence_live[~act] = 0.0
        denom = think + residence_live.sum(axis=2)
        bad = act & (denom <= 0)
        if bad.any():
            c = int(np.argwhere(bad)[0][1])
            raise SolverError(f"class {c} has zero demand and zero think time")
        thr = np.divide(pop, denom, out=np.zeros_like(pop), where=act)
        new_queue = thr[:, :, None] * residence_live
        delta = np.abs(new_queue - q).max(axis=(1, 2))
        q = new_queue
        iterations[live] += 1
        done = delta < tolerance
        if done.any():
            done_idx = live[done]
            queue[done_idx] = q[done]
            residence[done_idx] = residence_live[done]
            throughput[done_idx] = thr[done]
            converged[done_idx] = True
            keep = ~done
            live = live[keep]
            if live.size == 0:
                break
            (_, dem, vis, q_dem, q_srv, x_delay, pop, think, rat, act) = (
                sliced(live)
            )
            q = q[keep]
            delta = delta[keep]
            residence_live = residence_live[keep]
            thr = thr[keep]
        last_residual[live] = delta
        queue[live] = q
        residence[live] = residence_live
        throughput[live] = thr

    if live.size and raise_on_failure:
        raise ConvergenceError(
            "Bard-Schweitzer MVA did not converge",
            iterations=max_iterations,
            residual=float(last_residual[live].max()),
        )

    utilization = np.einsum("bc,bck->bk", throughput, demands)
    utilization = np.where(
        is_queue, utilization / multiplicities, utilization
    )
    cycle = np.where(
        active, think_times + residence.sum(axis=2), 0.0
    )
    return BatchMVAResult(
        throughputs=throughput,
        residence_times=residence,
        queue_lengths=queue,
        utilizations=utilization,
        cycle_times=cycle,
        iterations=iterations,
        converged=converged,
    )


def schweitzer_mva(
    stations: list[Station],
    demands: np.ndarray,
    populations: list[float],
    think_times: list[float] | None = None,
    *,
    visits: np.ndarray | None = None,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
) -> MVAResult:
    """Bard–Schweitzer approximate MVA.

    Accepts non-integer populations (useful when a caller class is a
    fractional share of a multi-entry task).  Classes with zero
    population are carried through with zero throughput.  This is the
    batch-of-one view of :func:`schweitzer_mva_batch`.

    Parameters
    ----------
    visits:
        Per-class visit counts, same shape as ``demands``; required when
        any station uses the FCFS discipline, so per-visit service times
        ``demands / visits`` can be formed.  Defaults to one visit
        wherever demand is positive.

    Raises
    ------
    ConvergenceError
        If the fixed point is not reached within ``max_iterations``.
    """
    demands = np.asarray(demands, dtype=float)
    classes = len(populations)
    think = list(think_times) if think_times is not None else [0.0] * classes
    _validate_inputs(stations, demands, populations, think)
    if visits is not None:
        visits = np.asarray(visits, dtype=float)
        if visits.shape != demands.shape:
            raise SolverError("visits shape must match demands shape")
        visits = visits[None]
    result = schweitzer_mva_batch(
        stations,
        demands[None],
        np.asarray(populations, dtype=float)[None],
        np.asarray(think, dtype=float)[None],
        visits=visits,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    return result.element(0)
