"""Asymptotic throughput bounds for layered models.

Classical bounding analysis adapted to layered blocking semantics.  For
each reference class r:

* **population bound** — X_r ≤ N_r / (Z_r + D_r), where D_r is the
  class's zero-contention cycle demand (every wait set to zero): no
  closed class can beat its own no-queueing cycle;
* **bottleneck bounds** — for every server task σ and processor p,
  the class's completions are limited by the resource's capacity share:
  X_r ≤ m / d_r where d_r is the busy time the resource spends per
  class-r cycle.  When several classes share the resource these are
  per-class relaxations (the joint constraint Σ_r X_r·d_r ≤ m is also
  reported).

Because they ignore contention entirely, the bounds are guaranteed
upper bounds on the exact throughputs — used as sanity oracles for the
solver and the simulator (see ``tests/lqn/test_bounds.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.lqn.model import LQNModel
from repro.lqn.solver import _reference_visits


@dataclass(frozen=True)
class ClassBounds:
    """Upper bounds for one reference class.

    ``bottlenecks`` maps each resource (task or processor name) to the
    class's capacity bound m / d_r at that resource; ``throughput`` is
    the minimum over all bounds.
    """

    reference: str
    population_bound: float
    bottlenecks: Mapping[str, float]

    @property
    def throughput(self) -> float:
        candidates = [self.population_bound, *self.bottlenecks.values()]
        return min(candidates)


@dataclass(frozen=True)
class UtilizationConstraint:
    """Joint capacity constraint at one resource: Σ_r X_r·d_r ≤ m."""

    resource: str
    capacity: float
    demand_per_class: Mapping[str, float]

    def is_satisfied(self, throughputs: Mapping[str, float], *, slack: float = 1e-6) -> bool:
        load = sum(
            throughputs.get(name, 0.0) * demand
            for name, demand in self.demand_per_class.items()
        )
        return load <= self.capacity + slack


def throughput_bounds(model: LQNModel) -> dict[str, ClassBounds]:
    """Per-reference-class asymptotic upper bounds."""
    model.validate()
    visits = _reference_visits(model)

    # Zero-contention service time per entry (no waits anywhere).
    zero_wait: dict[str, float] = {}

    def service(entry_name: str) -> float:
        cached = zero_wait.get(entry_name)
        if cached is not None:
            return cached
        entry = model.entries[entry_name]
        total = entry.demand
        for call in entry.calls:
            total += call.mean_calls * service(call.target)
        zero_wait[entry_name] = total
        return total

    bounds: dict[str, ClassBounds] = {}
    for reference in model.reference_tasks():
        cycle_demand = sum(
            service(entry.name) + model.entries[entry.name].phase2_demand
            for entry in model.entries_of_task(reference.name)
        )
        population = (
            reference.multiplicity / (reference.think_time + cycle_demand)
            if reference.think_time + cycle_demand > 0
            else float("inf")
        )

        bottlenecks: dict[str, float] = {}
        class_visits = visits[reference.name]
        # Server tasks: busy time per class cycle (phase 1 + phase 2,
        # nested waits excluded but nested *service* included via the
        # zero-contention recursion).
        for task in model.server_tasks():
            busy = sum(
                class_visits.get(entry.name, 0.0)
                * (service(entry.name) + entry.phase2_demand)
                for entry in model.entries_of_task(task.name)
            )
            if busy > 0:
                bottlenecks[task.name] = task.multiplicity / busy
        # Processors: pure host demand per class cycle.
        for processor in model.processors.values():
            demand = sum(
                class_visits.get(entry.name, 0.0)
                * (entry.demand + entry.phase2_demand)
                for entry in model.entries.values()
                if model.tasks[entry.task].processor == processor.name
            )
            if demand > 0:
                bottlenecks[processor.name] = processor.multiplicity / demand

        bounds[reference.name] = ClassBounds(
            reference=reference.name,
            population_bound=population,
            bottlenecks=bottlenecks,
        )
    return bounds


def utilization_constraints(model: LQNModel) -> list[UtilizationConstraint]:
    """Joint Σ_r X_r·d_r ≤ m constraints for every shared resource."""
    model.validate()
    visits = _reference_visits(model)
    constraints: list[UtilizationConstraint] = []

    for processor in model.processors.values():
        per_class: dict[str, float] = {}
        for reference in model.reference_tasks():
            demand = sum(
                visits[reference.name].get(entry.name, 0.0)
                * (entry.demand + entry.phase2_demand)
                for entry in model.entries.values()
                if model.tasks[entry.task].processor == processor.name
            )
            if demand > 0:
                per_class[reference.name] = demand
        if per_class:
            constraints.append(
                UtilizationConstraint(
                    resource=processor.name,
                    capacity=float(processor.multiplicity),
                    demand_per_class=per_class,
                )
            )
    return constraints
