"""Method-of-Layers-style fixed-point solver for LQN models.

The solver alternates three estimates until they agree:

1. **Entry service times** — bottom-up through the (acyclic) call
   graph: an invocation of entry *e* occupies its task thread for
   ``S_e = d_e + W_proc(e) + Σ_f n_ef · (W_task(τ_e → τ_f) + S_f)``,
   i.e. its processor demand plus processor queueing plus, for every
   synchronous call, queueing at the target task plus the target's own
   service time (blocking RPC semantics).
2. **Software submodels** — one closed queueing network per server
   task: the station is the task (``multiplicity`` threads, FCFS), the
   customer classes are its direct caller tasks, each with its thread
   population and a *surrogate think time* equal to the rest of its
   cycle.  Solved with Bard–Schweitzer AMVA; yields the per-visit
   waiting ``W_task``.
3. **Hardware submodels** — one closed network per processor: the
   station is the processor, classes are the hosted tasks, populations
   their thread counts, think times the non-processor part of their
   cycles; yields ``W_proc``.

Waiting-time updates are damped to stabilise the fixed point.  The
approach is the standard decomposition used by LQNS/Method of Layers
[14] (Rolia & Sevcik's MOL; Woodside's SRVN), reimplemented from the
published equations.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import SolverError
from repro.lqn.model import LQNModel
from repro.lqn.mva import Discipline, Station, StationKind, schweitzer_mva
from repro.lqn.results import LQNResults

#: Throughputs below this are treated as "task inactive".
_EPSILON = 1e-12


def _reference_visits(model: LQNModel) -> dict[str, dict[str, float]]:
    """V[r][e]: invocations of entry e per cycle of reference task r."""
    visits: dict[str, dict[str, float]] = {}

    def accumulate(table: dict[str, float], entry_name: str, factor: float) -> None:
        table[entry_name] = table.get(entry_name, 0.0) + factor
        for call in model.entries[entry_name].calls:
            accumulate(table, call.target, factor * call.mean_calls)

    for reference in model.reference_tasks():
        table: dict[str, float] = {}
        for entry in model.entries_of_task(reference.name):
            accumulate(table, entry.name, 1.0)
        visits[reference.name] = table
    return visits


def solve_lqn(
    model: LQNModel,
    *,
    tolerance: float = 1e-8,
    max_iterations: int = 2000,
    damping: float = 0.5,
) -> LQNResults:
    """Solve an LQN model for steady-state throughputs and delays.

    Parameters
    ----------
    tolerance:
        Outer fixed-point tolerance on throughputs and waiting times.
    max_iterations:
        Outer iteration budget; the result reports ``converged=False``
        if exceeded (it does not raise — a slightly unconverged solution
        is still informative for screening configurations).
    damping:
        Fraction of each newly solved waiting time blended into the
        estimate per outer iteration (0 < damping ≤ 1).

    Raises
    ------
    ModelError
        If the model fails validation.
    SolverError
        If a reference class has a degenerate (zero-length) cycle.
    """
    model.validate()
    if not 0 < damping <= 1:
        raise SolverError("damping must be in (0, 1]")

    references = model.reference_tasks()
    visits = _reference_visits(model)
    entry_names = list(model.entries)
    entry_order = _topological_entries(model)

    # Per-(caller task, server task) per-visit waiting estimates.
    wait_task: dict[tuple[str, str], float] = {}
    # Per-task processor waiting per invocation.
    wait_proc: dict[str, float] = {name: 0.0 for name in model.tasks}

    throughput_ref: dict[str, float] = {r.name: 0.0 for r in references}
    service: dict[str, float] = {name: 0.0 for name in entry_names}
    # Busy time per invocation: phase 1 (the caller-visible service)
    # plus the post-reply second phase.
    busy: dict[str, float] = {name: 0.0 for name in entry_names}
    entry_rate: dict[str, float] = {name: 0.0 for name in entry_names}
    task_rate: dict[str, float] = {name: 0.0 for name in model.tasks}

    iterations_used = max_iterations
    converged = False
    for iteration in range(max_iterations):
        # -- 1. entry service times, bottom-up ------------------------
        for name in entry_order:
            entry = model.entries[name]
            total = entry.demand
            if entry.demand > 0:
                total += wait_proc[entry.task]
            for call in entry.calls:
                target = model.entries[call.target]
                wait = wait_task.get((entry.task, target.task), 0.0)
                total += call.mean_calls * (wait + service[call.target])
            service[name] = total
            second = entry.phase2_demand
            if second > 0:
                second += wait_proc[entry.task]
            busy[name] = total + second

        # -- 2. reference throughputs ---------------------------------
        new_throughput: dict[str, float] = {}
        for reference in references:
            # A user's own second phase delays its next cycle.
            cycle = reference.think_time + sum(
                busy[entry.name]
                for entry in model.entries_of_task(reference.name)
            )
            if cycle <= 0:
                raise SolverError(
                    f"reference task {reference.name!r} has a zero-length cycle"
                )
            new_throughput[reference.name] = reference.multiplicity / cycle

        delta = max(
            (
                abs(new_throughput[name] - throughput_ref[name])
                for name in new_throughput
            ),
            default=0.0,
        )
        throughput_ref = new_throughput

        for name in entry_names:
            entry_rate[name] = sum(
                throughput_ref[r.name] * visits[r.name].get(name, 0.0)
                for r in references
            )
        for task_name in model.tasks:
            task_rate[task_name] = sum(
                entry_rate[entry.name]
                for entry in model.entries_of_task(task_name)
            )

        # -- 3. software submodels ------------------------------------
        for server in model.server_tasks():
            delta = max(
                delta,
                _solve_software_submodel(
                    model,
                    server.name,
                    service,
                    busy,
                    entry_rate,
                    task_rate,
                    wait_task,
                    damping,
                ),
            )

        # -- 4. hardware submodels ------------------------------------
        for processor in model.processors.values():
            delta = max(
                delta,
                _solve_processor_submodel(
                    model,
                    processor.name,
                    entry_rate,
                    task_rate,
                    wait_proc,
                    damping,
                ),
            )

        if delta < tolerance:
            iterations_used = iteration + 1
            converged = True
            break

    return _collect_results(
        model,
        visits,
        throughput_ref,
        entry_rate,
        task_rate,
        service,
        busy,
        wait_task,
        iterations_used,
        converged,
    )


def _topological_entries(model: LQNModel) -> list[str]:
    """Entry names ordered callees-first (valid because calls are acyclic)."""
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        for call in model.entries[name].calls:
            visit(call.target)
        order.append(name)

    for name in model.entries:
        visit(name)
    return order


def _call_rate_and_service(
    model: LQNModel,
    caller: str,
    server: str,
    entry_rate: Mapping[str, float],
    busy: Mapping[str, float],
) -> tuple[float, float]:
    """Total call rate caller→server and mean busy time per such call.

    The busy time (phase 1 + phase 2) is what contends for the server's
    threads; the caller itself only blocks for phase 1, which the
    submodel accounts for when extracting waiting times.
    """
    rate = 0.0
    weighted_busy = 0.0
    for entry in model.entries_of_task(caller):
        for call in entry.calls:
            target = model.entries[call.target]
            if target.task != server:
                continue
            stream = entry_rate[entry.name] * call.mean_calls
            rate += stream
            weighted_busy += stream * busy[call.target]
    if rate <= _EPSILON:
        return 0.0, 0.0
    return rate, weighted_busy / rate


def _solve_software_submodel(
    model: LQNModel,
    server: str,
    service: Mapping[str, float],
    busy: Mapping[str, float],
    entry_rate: Mapping[str, float],
    task_rate: Mapping[str, float],
    wait_task: dict[tuple[str, str], float],
    damping: float,
) -> float:
    """One AMVA solve of the queueing at a server task's request queue.

    Returns the largest damped change applied to a waiting estimate.
    """
    callers: list[str] = []
    visit_counts: list[float] = []
    services: list[float] = []
    populations: list[float] = []
    thinks: list[float] = []
    clamped_population = 0.0
    total_population = 0.0

    for caller in model.callers_of_task(server):
        x_caller = task_rate[caller]
        rate, per_call_service = _call_rate_and_service(
            model, caller, server, entry_rate, busy
        )
        if x_caller <= _EPSILON or rate <= _EPSILON:
            continue
        v = rate / x_caller  # calls into `server` per caller invocation
        cycle = model.tasks[caller].multiplicity / x_caller
        current_wait = wait_task.get((caller, server), 0.0)
        residence = v * (current_wait + per_call_service)
        callers.append(caller)
        visit_counts.append(v)
        services.append(per_call_service)
        populations.append(model.tasks[caller].multiplicity)
        surrogate_think = cycle - residence
        thinks.append(max(0.0, surrogate_think))
        total_population += model.tasks[caller].multiplicity
        if surrogate_think <= 0.0:
            clamped_population += model.tasks[caller].multiplicity

    if not callers:
        return 0.0

    station = Station(
        name=server,
        kind=StationKind.QUEUE,
        multiplicity=model.tasks[server].multiplicity,
        discipline=Discipline.FCFS,
    )
    demands = np.array([[v * s] for v, s in zip(visit_counts, services)])
    visit_matrix = np.array([[v] for v in visit_counts])
    result = schweitzer_mva(
        [station], demands, populations, thinks, visits=visit_matrix
    )

    # Ghost-work correction for second phases.  When the submodel is
    # *saturated* (caller surrogate think times clamp at zero), every
    # service completion is immediately followed by a re-arrival, so the
    # new request always finds the previous customer's phase-2 work
    # still holding the thread — extra waiting the closed MVA cannot
    # see (the owner is no longer a queued customer).  In the fully
    # clamped limit the exact extra wait is the mean second phase; below
    # saturation the surrogate think absorbs the leftover and no
    # correction is due.  Scale by the clamped share of the population.
    total_rate = sum(
        entry_rate[entry.name] for entry in model.entries_of_task(server)
    )
    mean_phase2 = (
        sum(
            entry_rate[entry.name] * (busy[entry.name] - service[entry.name])
            for entry in model.entries_of_task(server)
        ) / total_rate
        if total_rate > _EPSILON
        else 0.0
    )
    clamped_share = (
        clamped_population / total_population if total_population > 0 else 0.0
    )
    phase2_correction = mean_phase2 * clamped_share

    max_change = 0.0
    for index, caller in enumerate(callers):
        v = visit_counts[index]
        solved_wait = phase2_correction + max(
            0.0, result.residence_times[index, 0] / v - services[index]
        )
        key = (caller, server)
        old = wait_task.get(key, 0.0)
        new = (1.0 - damping) * old + damping * solved_wait
        wait_task[key] = new
        max_change = max(max_change, abs(new - old))
    return max_change


def _solve_processor_submodel(
    model: LQNModel,
    processor: str,
    entry_rate: Mapping[str, float],
    task_rate: Mapping[str, float],
    wait_proc: dict[str, float],
    damping: float,
) -> float:
    """One AMVA solve of the contention at a processor.

    Each hosted task is a customer class; its per-invocation processor
    demand is the entry-mix-weighted host demand.  Returns the largest
    damped change applied to a waiting estimate.
    """
    tasks: list[str] = []
    demands_per_invocation: list[float] = []
    populations: list[float] = []
    thinks: list[float] = []

    for task in model.tasks.values():
        if task.processor != processor:
            continue
        x_task = task_rate[task.name]
        if x_task <= _EPSILON:
            continue
        demand = sum(
            entry_rate[entry.name] * (entry.demand + entry.phase2_demand)
            for entry in model.entries_of_task(task.name)
        ) / x_task
        if demand <= _EPSILON:
            continue
        cycle = task.multiplicity / x_task
        residence = wait_proc[task.name] + demand
        tasks.append(task.name)
        demands_per_invocation.append(demand)
        populations.append(task.multiplicity)
        thinks.append(max(0.0, cycle - residence))

    if not tasks:
        return 0.0

    station = Station(
        name=processor,
        kind=StationKind.QUEUE,
        multiplicity=model.processors[processor].multiplicity,
        discipline=Discipline.FCFS,
    )
    demands = np.array([[d] for d in demands_per_invocation])
    result = schweitzer_mva([station], demands, populations, thinks)

    max_change = 0.0
    for index, task_name in enumerate(tasks):
        solved_wait = max(
            0.0,
            result.residence_times[index, 0] - demands_per_invocation[index],
        )
        old = wait_proc[task_name]
        new = (1.0 - damping) * old + damping * solved_wait
        wait_proc[task_name] = new
        max_change = max(max_change, abs(new - old))
    return max_change


def _collect_results(
    model: LQNModel,
    visits: Mapping[str, Mapping[str, float]],
    throughput_ref: Mapping[str, float],
    entry_rate: Mapping[str, float],
    task_rate: Mapping[str, float],
    service: Mapping[str, float],
    busy: Mapping[str, float],
    wait_task: Mapping[tuple[str, str], float],
    iterations: int,
    converged: bool,
) -> LQNResults:
    task_throughputs = dict(task_rate)
    for name, value in throughput_ref.items():
        task_throughputs[name] = value

    entry_waiting: dict[str, float] = {}
    for entry in model.entries.values():
        if model.tasks[entry.task].is_reference:
            entry_waiting[entry.name] = 0.0
            continue
        # Average waiting over calling streams.
        total_rate = 0.0
        weighted = 0.0
        for caller_entry in model.entries.values():
            for call in caller_entry.calls:
                if call.target != entry.name:
                    continue
                stream = entry_rate[caller_entry.name] * call.mean_calls
                total_rate += stream
                weighted += stream * wait_task.get(
                    (caller_entry.task, entry.task), 0.0
                )
        entry_waiting[entry.name] = weighted / total_rate if total_rate > 0 else 0.0

    task_utilizations: dict[str, float] = {}
    for task in model.tasks.values():
        occupancy = sum(
            entry_rate[e.name] * busy[e.name]
            for e in model.entries_of_task(task.name)
        )
        task_utilizations[task.name] = occupancy / task.multiplicity

    processor_utilizations: dict[str, float] = {}
    for processor in model.processors.values():
        load = sum(
            entry_rate[e.name] * (e.demand + e.phase2_demand)
            for e in model.entries.values()
            if model.tasks[e.task].processor == processor.name
        )
        processor_utilizations[processor.name] = load / processor.multiplicity

    return LQNResults(
        task_throughputs=task_throughputs,
        entry_throughputs=dict(entry_rate),
        entry_service_times=dict(service),
        entry_waiting_times=entry_waiting,
        task_utilizations=task_utilizations,
        processor_utilizations=processor_utilizations,
        iterations=iterations,
        converged=converged,
    )
