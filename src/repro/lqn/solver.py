"""Method-of-Layers-style fixed-point solver for LQN models.

The solver alternates three estimates until they agree:

1. **Entry service times** — bottom-up through the (acyclic) call
   graph: an invocation of entry *e* occupies its task thread for
   ``S_e = d_e + W_proc(e) + Σ_f n_ef · (W_task(τ_e → τ_f) + S_f)``,
   i.e. its processor demand plus processor queueing plus, for every
   synchronous call, queueing at the target task plus the target's own
   service time (blocking RPC semantics).
2. **Software submodels** — one closed queueing network per server
   task: the station is the task (``multiplicity`` threads, FCFS), the
   customer classes are its direct caller tasks, each with its thread
   population and a *surrogate think time* equal to the rest of its
   cycle.  Solved with Bard–Schweitzer AMVA; yields the per-visit
   waiting ``W_task``.
3. **Hardware submodels** — one closed network per processor: the
   station is the processor, classes are the hosted tasks, populations
   their thread counts, think times the non-processor part of their
   cycles; yields ``W_proc``.

Waiting-time updates are damped to stabilise the fixed point.  The
approach is the standard decomposition used by LQNS/Method of Layers
[14] (Rolia & Sevcik's MOL; Woodside's SRVN), reimplemented from the
published equations.

Batching
--------
Within one outer iteration every submodel is *independent*: a software
submodel reads and writes only the ``wait_task[(caller, server)]``
entries of its own server, a hardware submodel only the ``wait_proc``
entries of its own processor, and both read entry services and rates
that are fixed by steps 1–2.  :func:`solve_lqn_batch` exploits this by
building the submodel networks of *all* models still iterating and
solving them in **one** :func:`~repro.lqn.mva.schweitzer_mva_batch`
call per outer sweep — each model's trajectory, and therefore its
result, is exactly what a sequential :func:`solve_lqn` produces.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.lqn.model import LQNModel
from repro.lqn.mva import (
    Discipline,
    Station,
    StationKind,
    default_initial_queue,
    schweitzer_mva_batch,
)
from repro.lqn.results import LQNResults, WarmStart

#: Throughputs below this are treated as "task inactive".
_EPSILON = 1e-12


def _reference_visits(model: LQNModel) -> dict[str, dict[str, float]]:
    """V[r][e]: invocations of entry e per cycle of reference task r."""
    visits: dict[str, dict[str, float]] = {}

    def accumulate(table: dict[str, float], entry_name: str, factor: float) -> None:
        table[entry_name] = table.get(entry_name, 0.0) + factor
        for call in model.entries[entry_name].calls:
            accumulate(table, call.target, factor * call.mean_calls)

    for reference in model.reference_tasks():
        table: dict[str, float] = {}
        for entry in model.entries_of_task(reference.name):
            accumulate(table, entry.name, 1.0)
        visits[reference.name] = table
    return visits


def solve_lqn(
    model: LQNModel,
    *,
    tolerance: float = 1e-8,
    max_iterations: int = 2000,
    damping: float = 0.5,
    warm_start: WarmStart | None = None,
    mva_tolerance: float = 1e-10,
    mva_max_iterations: int = 100_000,
    mva_warm_start: bool = True,
) -> LQNResults:
    """Solve an LQN model for steady-state throughputs and delays.

    Parameters
    ----------
    tolerance:
        Outer fixed-point tolerance on throughputs and waiting times.
    max_iterations:
        Outer iteration budget; the result reports ``converged=False``
        if exceeded (it does not raise — a slightly unconverged solution
        is still informative for screening configurations).
    damping:
        Fraction of each newly solved waiting time blended into the
        estimate per outer iteration (0 < damping ≤ 1).
    warm_start:
        Optional waiting-time seed (a previous solve's
        :attr:`~repro.lqn.results.LQNResults.warm_start`).  Entries for
        tasks absent from this model are ignored.  The solver converges
        to the same fixed point either way; a good seed just gets there
        in fewer iterations.
    mva_tolerance, mva_max_iterations:
        Convergence budget of the inner submodel AMVA solves.  An inner
        solve that exhausts its budget is a *soft* failure: the outer
        iteration continues with the best available estimates and the
        result reports ``converged=False``.
    mva_warm_start:
        Seed each inner AMVA solve with the queue lengths of the same
        submodel from the previous outer iteration (default).  Disable
        to reproduce fully cold inner solves.

    Raises
    ------
    ModelError
        If the model fails validation.
    SolverError
        If a reference class has a degenerate (zero-length) cycle.
    """
    return solve_lqn_batch(
        [model],
        tolerance=tolerance,
        max_iterations=max_iterations,
        damping=damping,
        warm_starts=[warm_start],
        mva_tolerance=mva_tolerance,
        mva_max_iterations=mva_max_iterations,
        mva_warm_start=mva_warm_start,
    )[0]


@dataclass
class _SubmodelSpec:
    """One submodel network queued for the shared batched AMVA call."""

    state: "_ModelState"
    kind: str  # "task" | "proc"
    server: str  # server task or processor name
    classes: list[str]
    visit_counts: list[float]
    services: list[float]  # per-call phase-1 services (software only)
    populations: list[float]
    thinks: list[float]
    multiplicity: int
    phase2_correction: float = 0.0


@dataclass
class _ModelState:
    """Mutable per-model solver state for the lockstep batch."""

    model: LQNModel
    visits: dict[str, dict[str, float]]
    entry_order: list[str]
    wait_task: dict[tuple[str, str], float]
    wait_proc: dict[str, float]
    throughput_ref: dict[str, float]
    service: dict[str, float]
    busy: dict[str, float]
    entry_rate: dict[str, float]
    task_rate: dict[str, float]
    iterations_used: int
    converged: bool = False
    active: bool = True
    inner_failed: bool = False
    # (kind, server) -> (class-name signature, final queue lengths) of
    # the previous outer iteration, for inner warm starts.
    inner_queues: dict[tuple[str, str], tuple[tuple[str, ...], np.ndarray]] = field(
        default_factory=dict
    )


def _init_state(
    model: LQNModel, warm_start: WarmStart | None, max_iterations: int
) -> _ModelState:
    model.validate()
    wait_task: dict[tuple[str, str], float] = {}
    wait_proc: dict[str, float] = {name: 0.0 for name in model.tasks}
    if warm_start is not None:
        for (caller, server), value in warm_start.wait_task.items():
            if caller in model.tasks and server in model.tasks:
                wait_task[(caller, server)] = float(value)
        for task, value in warm_start.wait_proc.items():
            if task in model.tasks:
                wait_proc[task] = float(value)
    return _ModelState(
        model=model,
        visits=_reference_visits(model),
        entry_order=_topological_entries(model),
        wait_task=wait_task,
        wait_proc=wait_proc,
        throughput_ref={r.name: 0.0 for r in model.reference_tasks()},
        service={name: 0.0 for name in model.entries},
        busy={name: 0.0 for name in model.entries},
        entry_rate={name: 0.0 for name in model.entries},
        task_rate={name: 0.0 for name in model.tasks},
        iterations_used=max_iterations,
    )


def solve_lqn_batch(
    models: Sequence[LQNModel],
    *,
    tolerance: float = 1e-8,
    max_iterations: int = 2000,
    damping: float = 0.5,
    warm_starts: Sequence[WarmStart | None] | None = None,
    mva_tolerance: float = 1e-10,
    mva_max_iterations: int = 100_000,
    mva_warm_start: bool = True,
) -> list[LQNResults]:
    """Solve several LQN models in lockstep with shared batched AMVA.

    Semantically equivalent to ``[solve_lqn(m, ...) for m in models]``
    — each model follows exactly the trajectory the sequential solver
    would give it — but every outer sweep solves the submodel networks
    of *all* still-active models in one
    :func:`~repro.lqn.mva.schweitzer_mva_batch` call, replacing
    hundreds of small Python fixed points per configuration sweep with
    a handful of vectorised ones.

    ``warm_starts`` optionally provides one
    :class:`~repro.lqn.results.WarmStart` (or ``None``) per model.
    See :func:`solve_lqn` for the remaining parameters.
    """
    if not 0 < damping <= 1:
        raise SolverError("damping must be in (0, 1]")
    models = list(models)
    if warm_starts is None:
        warm_starts = [None] * len(models)
    if len(warm_starts) != len(models):
        raise SolverError("warm_starts length must equal the number of models")
    states = [
        _init_state(model, seed, max_iterations)
        for model, seed in zip(models, warm_starts)
    ]

    for iteration in range(max_iterations):
        live = [s for s in states if s.active]
        if not live:
            break
        deltas: dict[int, float] = {}
        specs: list[_SubmodelSpec] = []
        for state in live:
            deltas[id(state)] = _update_services_and_rates(state)
            specs.extend(_software_specs(state))
            specs.extend(_processor_specs(state))

        if specs:
            _solve_specs(
                specs,
                damping=damping,
                deltas=deltas,
                mva_tolerance=mva_tolerance,
                mva_max_iterations=mva_max_iterations,
                mva_warm_start=mva_warm_start,
            )

        for state in live:
            if deltas[id(state)] < tolerance:
                state.iterations_used = iteration + 1
                state.converged = True
                state.active = False

    return [
        _collect_results(
            state,
            state.iterations_used,
            state.converged and not state.inner_failed,
        )
        for state in states
    ]


def _update_services_and_rates(state: _ModelState) -> float:
    """Steps 1–2: entry services bottom-up, then reference throughputs
    and per-entry/per-task rates.  Returns the throughput delta."""
    model = state.model
    service, busy = state.service, state.busy
    wait_task, wait_proc = state.wait_task, state.wait_proc

    for name in state.entry_order:
        entry = model.entries[name]
        total = entry.demand
        if entry.demand > 0:
            total += wait_proc[entry.task]
        for call in entry.calls:
            target = model.entries[call.target]
            wait = wait_task.get((entry.task, target.task), 0.0)
            total += call.mean_calls * (wait + service[call.target])
        service[name] = total
        second = entry.phase2_demand
        if second > 0:
            second += wait_proc[entry.task]
        busy[name] = total + second

    new_throughput: dict[str, float] = {}
    for reference in model.reference_tasks():
        # A user's own second phase delays its next cycle.
        cycle = reference.think_time + sum(
            busy[entry.name]
            for entry in model.entries_of_task(reference.name)
        )
        if cycle <= 0:
            raise SolverError(
                f"reference task {reference.name!r} has a zero-length cycle"
            )
        new_throughput[reference.name] = reference.multiplicity / cycle

    delta = max(
        (
            abs(new_throughput[name] - state.throughput_ref[name])
            for name in new_throughput
        ),
        default=0.0,
    )
    state.throughput_ref = new_throughput

    references = model.reference_tasks()
    for name in model.entries:
        state.entry_rate[name] = sum(
            new_throughput[r.name] * state.visits[r.name].get(name, 0.0)
            for r in references
        )
    for task_name in model.tasks:
        state.task_rate[task_name] = sum(
            state.entry_rate[entry.name]
            for entry in model.entries_of_task(task_name)
        )
    return delta


def _software_specs(state: _ModelState) -> list[_SubmodelSpec]:
    """Step 3 networks: queueing at each server task's request queue."""
    model = state.model
    specs: list[_SubmodelSpec] = []
    for server_task in model.server_tasks():
        server = server_task.name
        callers: list[str] = []
        visit_counts: list[float] = []
        services: list[float] = []
        populations: list[float] = []
        thinks: list[float] = []
        clamped_population = 0.0
        total_population = 0.0

        for caller in model.callers_of_task(server):
            x_caller = state.task_rate[caller]
            rate, per_call_service = _call_rate_and_service(
                model, caller, server, state.entry_rate, state.busy
            )
            if x_caller <= _EPSILON or rate <= _EPSILON:
                continue
            v = rate / x_caller  # calls into `server` per caller invocation
            cycle = model.tasks[caller].multiplicity / x_caller
            current_wait = state.wait_task.get((caller, server), 0.0)
            residence = v * (current_wait + per_call_service)
            callers.append(caller)
            visit_counts.append(v)
            services.append(per_call_service)
            populations.append(model.tasks[caller].multiplicity)
            surrogate_think = cycle - residence
            thinks.append(max(0.0, surrogate_think))
            total_population += model.tasks[caller].multiplicity
            if surrogate_think <= 0.0:
                clamped_population += model.tasks[caller].multiplicity

        if not callers:
            continue

        # Ghost-work correction for second phases.  When the submodel is
        # *saturated* (caller surrogate think times clamp at zero), every
        # service completion is immediately followed by a re-arrival, so
        # the new request always finds the previous customer's phase-2
        # work still holding the thread — extra waiting the closed MVA
        # cannot see (the owner is no longer a queued customer).  In the
        # fully clamped limit the exact extra wait is the mean second
        # phase; below saturation the surrogate think absorbs the
        # leftover and no correction is due.  Scale by the clamped share
        # of the population.
        total_rate = sum(
            state.entry_rate[entry.name]
            for entry in model.entries_of_task(server)
        )
        mean_phase2 = (
            sum(
                state.entry_rate[entry.name]
                * (state.busy[entry.name] - state.service[entry.name])
                for entry in model.entries_of_task(server)
            ) / total_rate
            if total_rate > _EPSILON
            else 0.0
        )
        clamped_share = (
            clamped_population / total_population
            if total_population > 0
            else 0.0
        )
        specs.append(
            _SubmodelSpec(
                state=state,
                kind="task",
                server=server,
                classes=callers,
                visit_counts=visit_counts,
                services=services,
                populations=populations,
                thinks=thinks,
                multiplicity=model.tasks[server].multiplicity,
                phase2_correction=mean_phase2 * clamped_share,
            )
        )
    return specs


def _processor_specs(state: _ModelState) -> list[_SubmodelSpec]:
    """Step 4 networks: contention of hosted tasks at each processor."""
    model = state.model
    specs: list[_SubmodelSpec] = []
    for processor in model.processors.values():
        tasks: list[str] = []
        demands_per_invocation: list[float] = []
        populations: list[float] = []
        thinks: list[float] = []
        for task in model.tasks.values():
            if task.processor != processor.name:
                continue
            x_task = state.task_rate[task.name]
            if x_task <= _EPSILON:
                continue
            demand = sum(
                state.entry_rate[entry.name]
                * (entry.demand + entry.phase2_demand)
                for entry in model.entries_of_task(task.name)
            ) / x_task
            if demand <= _EPSILON:
                continue
            cycle = task.multiplicity / x_task
            residence = state.wait_proc[task.name] + demand
            tasks.append(task.name)
            demands_per_invocation.append(demand)
            populations.append(task.multiplicity)
            thinks.append(max(0.0, cycle - residence))
        if not tasks:
            continue
        specs.append(
            _SubmodelSpec(
                state=state,
                kind="proc",
                server=processor.name,
                classes=tasks,
                # Processor demand is per invocation; one visit per class
                # (the sequential solver's default-visits convention).
                visit_counts=[1.0] * len(tasks),
                services=demands_per_invocation,
                populations=populations,
                thinks=thinks,
                multiplicity=processor.multiplicity,
            )
        )
    return specs


#: The single shared station template of every submodel network: one
#: FCFS queue; per-spec multiplicities ride in the batch call.
_SUBMODEL_STATION = Station(
    name="submodel", kind=StationKind.QUEUE, multiplicity=1,
    discipline=Discipline.FCFS,
)


def _solve_specs(
    specs: list[_SubmodelSpec],
    *,
    damping: float,
    deltas: dict[int, float],
    mva_tolerance: float,
    mva_max_iterations: int,
    mva_warm_start: bool,
) -> None:
    """Solve every queued submodel in one batched AMVA call and apply
    the damped waiting-time updates to each owning model."""
    batch = len(specs)
    class_max = max(len(spec.classes) for spec in specs)
    demands = np.zeros((batch, class_max, 1))
    visits = np.zeros((batch, class_max, 1))
    populations = np.zeros((batch, class_max))
    thinks = np.zeros((batch, class_max))
    multiplicities = np.ones((batch, 1), dtype=np.int64)
    for i, spec in enumerate(specs):
        n = len(spec.classes)
        v = np.asarray(spec.visit_counts)
        demands[i, :n, 0] = v * np.asarray(spec.services)
        visits[i, :n, 0] = v
        populations[i, :n] = spec.populations
        thinks[i, :n] = spec.thinks
        multiplicities[i, 0] = spec.multiplicity

    initial = default_initial_queue(demands, populations)
    if mva_warm_start:
        for i, spec in enumerate(specs):
            seeded = spec.state.inner_queues.get((spec.kind, spec.server))
            if seeded is None:
                continue
            signature, queue = seeded
            if signature != tuple(spec.classes):
                continue
            initial[i, : len(spec.classes), 0] = queue

    result = schweitzer_mva_batch(
        [_SUBMODEL_STATION],
        demands,
        populations,
        thinks,
        visits=visits,
        multiplicities=multiplicities,
        initial_queues=initial,
        tolerance=mva_tolerance,
        max_iterations=mva_max_iterations,
        raise_on_failure=False,
    )

    for i, spec in enumerate(specs):
        state = spec.state
        n = len(spec.classes)
        if not result.converged[i]:
            # Soft failure: keep iterating with the best available
            # estimates and surface it via converged=False at the end.
            state.inner_failed = True
        if mva_warm_start:
            state.inner_queues[(spec.kind, spec.server)] = (
                tuple(spec.classes),
                result.queue_lengths[i, :n, 0].copy(),
            )
        max_change = 0.0
        if spec.kind == "task":
            for index, caller in enumerate(spec.classes):
                v = spec.visit_counts[index]
                solved_wait = spec.phase2_correction + max(
                    0.0,
                    result.residence_times[i, index, 0] / v
                    - spec.services[index],
                )
                key = (caller, spec.server)
                old = state.wait_task.get(key, 0.0)
                new = (1.0 - damping) * old + damping * solved_wait
                state.wait_task[key] = new
                max_change = max(max_change, abs(new - old))
        else:
            for index, task_name in enumerate(spec.classes):
                solved_wait = max(
                    0.0,
                    result.residence_times[i, index, 0]
                    - spec.services[index],
                )
                old = state.wait_proc[task_name]
                new = (1.0 - damping) * old + damping * solved_wait
                state.wait_proc[task_name] = new
                max_change = max(max_change, abs(new - old))
        deltas[id(state)] = max(deltas[id(state)], max_change)


def _topological_entries(model: LQNModel) -> list[str]:
    """Entry names ordered callees-first (valid because calls are acyclic)."""
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        for call in model.entries[name].calls:
            visit(call.target)
        order.append(name)

    for name in model.entries:
        visit(name)
    return order


def _call_rate_and_service(
    model: LQNModel,
    caller: str,
    server: str,
    entry_rate: Mapping[str, float],
    busy: Mapping[str, float],
) -> tuple[float, float]:
    """Total call rate caller→server and mean busy time per such call.

    The busy time (phase 1 + phase 2) is what contends for the server's
    threads; the caller itself only blocks for phase 1, which the
    submodel accounts for when extracting waiting times.
    """
    rate = 0.0
    weighted_busy = 0.0
    for entry in model.entries_of_task(caller):
        for call in entry.calls:
            target = model.entries[call.target]
            if target.task != server:
                continue
            stream = entry_rate[entry.name] * call.mean_calls
            rate += stream
            weighted_busy += stream * busy[call.target]
    if rate <= _EPSILON:
        return 0.0, 0.0
    return rate, weighted_busy / rate


def _collect_results(
    state: _ModelState,
    iterations: int,
    converged: bool,
) -> LQNResults:
    model = state.model
    entry_rate = state.entry_rate
    task_throughputs = dict(state.task_rate)
    for name, value in state.throughput_ref.items():
        task_throughputs[name] = value

    entry_waiting: dict[str, float] = {}
    for entry in model.entries.values():
        if model.tasks[entry.task].is_reference:
            entry_waiting[entry.name] = 0.0
            continue
        # Average waiting over calling streams.
        total_rate = 0.0
        weighted = 0.0
        for caller_entry in model.entries.values():
            for call in caller_entry.calls:
                if call.target != entry.name:
                    continue
                stream = entry_rate[caller_entry.name] * call.mean_calls
                total_rate += stream
                weighted += stream * state.wait_task.get(
                    (caller_entry.task, entry.task), 0.0
                )
        entry_waiting[entry.name] = weighted / total_rate if total_rate > 0 else 0.0

    task_utilizations: dict[str, float] = {}
    for task in model.tasks.values():
        occupancy = sum(
            entry_rate[e.name] * state.busy[e.name]
            for e in model.entries_of_task(task.name)
        )
        task_utilizations[task.name] = occupancy / task.multiplicity

    processor_utilizations: dict[str, float] = {}
    for processor in model.processors.values():
        load = sum(
            entry_rate[e.name] * (e.demand + e.phase2_demand)
            for e in model.entries.values()
            if model.tasks[e.task].processor == processor.name
        )
        processor_utilizations[processor.name] = load / processor.multiplicity

    return LQNResults(
        task_throughputs=task_throughputs,
        entry_throughputs=dict(entry_rate),
        entry_service_times=dict(state.service),
        entry_waiting_times=entry_waiting,
        task_utilizations=task_utilizations,
        processor_utilizations=processor_utilizations,
        iterations=iterations,
        converged=converged,
        warm_start=WarmStart(
            wait_task=dict(state.wait_task),
            wait_proc=dict(state.wait_proc),
        ),
    )
